//! Linear Hashing \[Lit80\] (§3.2).
//!
//! Litwin's scheme: buckets split in a fixed, linear order governed by a
//! split pointer, so no directory is needed beyond the bucket array. The
//! split/contract *criterion* is storage utilisation (used bytes ÷
//! available bytes), which is exactly what the paper blames for its poor
//! query-mix showing: *"Linear Hashing … was much slower because, trying
//! to maintain a particular storage utilization …, it did a significant
//! amount of data reorganization even though the number of elements was
//! relatively constant."*
//!
//! The paper's pathology comes from using a single set-point as both the
//! split and the contract criterion: a mixed insert/delete workload then
//! hovers on the threshold and every operation reorganises (measured here
//! as a ~5× per-op outlier in `index_insert_delete`). The table now keeps
//! the utilisation-driven *criterion* but separates the two thresholds
//! into a dead band ([`SPLIT_THRESHOLD`] / [`CONTRACT_THRESHOLD`]): growth
//! and shrink still track utilisation, while a constant-population
//! workload settles inside the band and stops restructuring. The
//! set-point pathology itself stays reproducible by narrowing the band —
//! see `mixed_workload_set_point_reproduces_paper_thrash`.

use crate::adapter::HashAdapter;
use crate::stats::{Counters, Snapshot};
use crate::traits::{IndexError, UnorderedIndex};
use std::cmp::Ordering;

/// Initial number of primary buckets.
const INITIAL_BUCKETS: usize = 4;
/// Utilisation above which an insert splits the next bucket. The paper's
/// Linear Hashing "tr[ied] to maintain a particular storage utilization"
/// with a *single* set-point — split and contract at the same value — so
/// a constant-population insert/delete mix reorganised on nearly every
/// operation. These defaults instead form a dead band: splits engage only
/// above 0.85 …
const SPLIT_THRESHOLD: f64 = 0.85;
/// … and contractions only below 0.60. A steady-state table sits inside
/// the band and never restructures; sustained growth or shrink still
/// drives utilisation through a threshold and reorganises as before. The
/// paper's set-point behaviour remains available through
/// [`LinearHash::with_thresholds`] (used by the thrash-reproduction test
/// and the Graph 2 figure notes).
const CONTRACT_THRESHOLD: f64 = 0.60;

struct Bucket<E> {
    items: Vec<E>,
}

/// A linear hash table with utilisation-driven growth.
pub struct LinearHash<A: HashAdapter> {
    adapter: A,
    buckets: Vec<Bucket<A::Entry>>,
    /// Doubling level: the table logically spans `INITIAL_BUCKETS * 2^level`.
    level: u32,
    /// Next bucket to split.
    split: usize,
    bucket_capacity: usize,
    len: usize,
    /// Cached sum of per-bucket page counts (each bucket occupies
    /// `ceil(len / capacity)` pages, minimum 1).
    total_pages: usize,
    /// Split when utilisation exceeds this.
    split_threshold: f64,
    /// Contract when utilisation falls below this.
    contract_threshold: f64,
    stats: Counters,
}

impl<A: HashAdapter> LinearHash<A> {
    /// Create with the given bucket ("node") capacity and the default
    /// [`SPLIT_THRESHOLD`] / [`CONTRACT_THRESHOLD`] dead band.
    pub fn new(adapter: A, bucket_capacity: usize) -> Self {
        Self::with_thresholds(
            adapter,
            bucket_capacity,
            SPLIT_THRESHOLD,
            CONTRACT_THRESHOLD,
        )
    }

    /// Create with explicit utilisation thresholds. Passing the same
    /// value for both reproduces the paper's single set-point — and with
    /// it the reorganisation thrash of §3.2 / Graph 2.
    pub fn with_thresholds(
        adapter: A,
        bucket_capacity: usize,
        split_threshold: f64,
        contract_threshold: f64,
    ) -> Self {
        let bucket_capacity = bucket_capacity.max(1);
        LinearHash {
            adapter,
            buckets: (0..INITIAL_BUCKETS)
                .map(|_| Bucket { items: Vec::new() })
                .collect(),
            level: 0,
            split: 0,
            bucket_capacity,
            len: 0,
            total_pages: INITIAL_BUCKETS,
            split_threshold,
            contract_threshold: contract_threshold.min(split_threshold),
            stats: Counters::default(),
        }
    }

    /// Number of primary buckets currently allocated.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn base(&self) -> usize {
        INITIAL_BUCKETS << self.level
    }

    fn address(&self, hash: u64) -> usize {
        let b = (hash % self.base() as u64) as usize;
        if b < self.split {
            (hash % (self.base() as u64 * 2)) as usize
        } else {
            b
        }
    }

    /// Pages needed for `n` items (primary page + overflow pages).
    fn pages_for(&self, n: usize) -> usize {
        n.div_ceil(self.bucket_capacity).max(1)
    }

    /// Pages occupied by a bucket (primary page + overflow pages).
    fn pages(&self, b: &Bucket<A::Entry>) -> usize {
        self.pages_for(b.items.len())
    }

    /// Adjust the cached page total for bucket `b` moving from `before`
    /// to `after` items.
    fn repage(&mut self, before: usize, after: usize) {
        self.total_pages = self.total_pages - self.pages_for(before) + self.pages_for(after);
    }

    /// Litwin's criterion: data bytes used ÷ data bytes available.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.len as f64 / (self.total_pages * self.bucket_capacity) as f64
    }

    fn split_one(&mut self) {
        self.stats.restructures(1);
        let new_index = self.buckets.len();
        debug_assert_eq!(new_index, self.base() + self.split);
        self.buckets.push(Bucket { items: Vec::new() });
        self.total_pages += 1;
        let old_items = std::mem::take(&mut self.buckets[self.split].items);
        let went = old_items.len();
        let wide = self.base() as u64 * 2;
        let mut stay = Vec::new();
        let mut go = Vec::new();
        for e in old_items {
            self.stats.hash_calls(1);
            self.stats.data_moves(1);
            if (self.adapter.hash_entry(&e) % wide) as usize == self.split {
                stay.push(e);
            } else {
                go.push(e);
            }
        }
        self.buckets[self.split].items = stay;
        self.buckets[new_index].items = go;
        // Page accounting: the old bucket held all `went` items on its own
        // pages; the new bucket's page was counted when it was pushed.
        let stay_len = self.buckets[self.split].items.len();
        let go_len = self.buckets[new_index].items.len();
        self.total_pages = self.total_pages - self.pages_for(went) - 1
            + self.pages_for(stay_len)
            + self.pages_for(go_len);
        self.split += 1;
        if self.split == self.base() {
            self.level += 1;
            self.split = 0;
        }
    }

    fn contract_one(&mut self) {
        if self.buckets.len() <= INITIAL_BUCKETS {
            return;
        }
        self.stats.restructures(1);
        if self.split == 0 {
            self.level -= 1;
            self.split = self.base();
        }
        self.split -= 1;
        let Some(mut victim) = self.buckets.pop() else {
            return; // unreachable: guarded by the INITIAL_BUCKETS check above
        };
        debug_assert_eq!(self.buckets.len(), self.base() + self.split);
        self.stats.data_moves(victim.items.len() as u64);
        let survivor_before = self.buckets[self.split].items.len();
        self.total_pages -= self.pages_for(victim.items.len());
        self.buckets[self.split].items.append(&mut victim.items);
        let survivor_after = self.buckets[self.split].items.len();
        self.repage(survivor_before, survivor_after);
    }

    fn maybe_grow(&mut self) {
        while self.utilization() > self.split_threshold {
            self.split_one();
        }
    }

    fn maybe_shrink(&mut self) {
        while self.buckets.len() > INITIAL_BUCKETS && self.utilization() < self.contract_threshold {
            self.contract_one();
        }
    }
}

impl<A: HashAdapter> UnorderedIndex<A> for LinearHash<A> {
    fn insert(&mut self, entry: A::Entry) {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_entry(&entry));
        let before = self.buckets[b].items.len();
        self.buckets[b].items.push(entry);
        self.repage(before, before + 1);
        self.stats.data_moves(1);
        self.len += 1;
        self.maybe_grow();
    }

    fn insert_unique(&mut self, entry: A::Entry) -> Result<(), IndexError> {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_entry(&entry));
        for e in &self.buckets[b].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(e, &entry) == Ordering::Equal {
                return Err(IndexError::DuplicateKey);
            }
        }
        let before = self.buckets[b].items.len();
        self.buckets[b].items.push(entry);
        self.repage(before, before + 1);
        self.stats.data_moves(1);
        self.len += 1;
        self.maybe_grow();
        Ok(())
    }

    fn delete(&mut self, key: &A::Key) -> Option<A::Entry> {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_key(key));
        self.stats.node_visits(1);
        for i in 0..self.buckets[b].items.len() {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&self.buckets[b].items[i], key) == Ordering::Equal {
                let before = self.buckets[b].items.len();
                let e = self.buckets[b].items.swap_remove(i);
                self.repage(before, before - 1);
                self.stats.data_moves(1);
                self.len -= 1;
                self.maybe_shrink();
                return Some(e);
            }
        }
        None
    }

    fn delete_entry(&mut self, entry: &A::Entry) -> bool {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_entry(entry));
        self.stats.node_visits(1);
        for i in 0..self.buckets[b].items.len() {
            self.stats.comparisons(1);
            if self.buckets[b].items[i] == *entry {
                let before = self.buckets[b].items.len();
                self.buckets[b].items.swap_remove(i);
                self.repage(before, before - 1);
                self.stats.data_moves(1);
                self.len -= 1;
                self.maybe_shrink();
                return true;
            }
        }
        false
    }

    fn search(&self, key: &A::Key) -> Option<A::Entry> {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_key(key));
        self.stats.node_visits(1);
        for e in &self.buckets[b].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(e, key) == Ordering::Equal {
                return Some(*e);
            }
        }
        None
    }

    fn search_all(&self, key: &A::Key, out: &mut Vec<A::Entry>) {
        self.stats.hash_calls(1);
        let b = self.address(self.adapter.hash_key(key));
        self.stats.node_visits(1);
        for e in &self.buckets[b].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(e, key) == Ordering::Equal {
                out.push(*e);
            }
        }
    }

    fn scan(&self, visit: &mut dyn FnMut(&A::Entry)) {
        for b in &self.buckets {
            for e in &b.items {
                visit(e);
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn storage_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket<A::Entry>>();
        for b in &self.buckets {
            // Charge whole pages, as a paged implementation would.
            total += self.pages(b) * self.bucket_capacity * std::mem::size_of::<A::Entry>();
        }
        total
    }

    fn stats(&self) -> Snapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn validate(&self) -> Result<(), String> {
        if self.buckets.len() != self.base() + self.split {
            return Err(format!(
                "bucket count {} != base {} + split {}",
                self.buckets.len(),
                self.base(),
                self.split
            ));
        }
        let mut counted = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            for e in &b.items {
                let a = self.address(self.adapter.hash_entry(e));
                if a != i {
                    return Err(format!("entry in bucket {i} addresses to {a}"));
                }
            }
            counted += b.items.len();
        }
        if counted != self.len {
            return Err(format!("len {} but buckets hold {counted}", self.len));
        }
        let pages: usize = self.buckets.iter().map(|b| self.pages(b)).sum();
        if pages != self.total_pages {
            return Err(format!(
                "cached pages {} != actual {pages}",
                self.total_pages
            ));
        }
        Ok(())
    }
}

/// Raw structural access for the `mmdb-check` verification layer.
#[cfg(feature = "check")]
impl<A: HashAdapter> LinearHash<A> {
    /// Every bucket's items, in page order.
    #[must_use]
    pub fn raw_buckets(&self) -> Vec<crate::raw::BucketView<A::Entry>> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(bucket, b)| crate::raw::BucketView {
                bucket,
                entries: b.items.clone(),
                truncated: false,
            })
            .collect()
    }

    /// The split pointer (next bucket to split).
    #[must_use]
    pub fn raw_split(&self) -> usize {
        self.split
    }

    /// `INITIAL_BUCKETS * 2^level`, the base of the current doubling.
    #[must_use]
    pub fn raw_base(&self) -> usize {
        self.base()
    }

    /// The bucket an entry addresses to under the current split state.
    #[must_use]
    pub fn raw_address_of(&self, e: &A::Entry) -> usize {
        self.address(self.adapter.hash_entry(e))
    }

    /// The adapter, for key comparisons during checking.
    #[must_use]
    pub fn raw_adapter(&self) -> &A {
        &self.adapter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit::{self, DupAdapter};

    fn nat(cap: usize) -> LinearHash<NaturalAdapter<u64>> {
        LinearHash::new(NaturalAdapter::new(), cap)
    }

    #[test]
    fn empty() {
        let mut h = nat(4);
        assert_eq!(h.search(&1), None);
        assert_eq!(h.delete(&1), None);
        h.validate().unwrap();
    }

    #[test]
    fn grows_linearly_under_inserts() {
        let mut h = nat(8);
        for k in 0..5000u64 {
            h.insert(k);
        }
        h.validate().unwrap();
        assert!(h.bucket_count() > 200, "buckets {}", h.bucket_count());
        for k in (0..5000u64).step_by(7) {
            assert_eq!(h.search(&k), Some(k));
        }
        // Utilisation is maintained near the threshold.
        let u = h.utilization();
        assert!(u > 0.5 && u <= 0.85, "utilization {u}");
    }

    #[test]
    fn shrinks_after_deletes() {
        let mut h = nat(8);
        for k in 0..5000u64 {
            h.insert(k);
        }
        let grown = h.bucket_count();
        for k in 0..4500u64 {
            assert_eq!(h.delete(&k), Some(k));
        }
        h.validate().unwrap();
        assert!(
            h.bucket_count() < grown / 2,
            "should contract: {} vs {grown}",
            h.bucket_count()
        );
        for k in 4500..5000u64 {
            assert_eq!(h.search(&k), Some(k));
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn steady_state_mixed_workload_does_not_thrash() {
        // With the split/contract dead band, a constant-population
        // insert/delete mix settles inside the band: after a short
        // warm-up, no operation restructures.
        let mut h = nat(4);
        for k in 0..2000u64 {
            h.insert(k);
        }
        // Warm-up: let any boundary-adjacent splits land.
        let mut rng = testkit::TestRng::new(31);
        for i in 0..500u64 {
            let _ = h.delete(&(i % 2000));
            h.insert(i % 2000);
            let _ = rng.below(1 << 30);
        }
        h.reset_stats();
        for i in 0..4000u64 {
            let _ = h.delete(&(i % 2000));
            let k = 2000 + rng.below(1 << 30);
            h.insert(k);
            let _ = h.delete(&k);
            h.insert(i % 2000);
        }
        let r = h.stats().restructures;
        assert_eq!(r, 0, "steady state must not reorganise, saw {r}");
        h.validate().unwrap();
        // Growth and shrink still restructure as before.
        h.reset_stats();
        for k in 10_000..14_000u64 {
            h.insert(k);
        }
        assert!(h.stats().restructures > 0, "growth must split");
        h.reset_stats();
        for k in 10_000..14_000u64 {
            let _ = h.delete(&k);
        }
        for k in 0..1500u64 {
            let _ = h.delete(&k);
        }
        assert!(h.stats().restructures > 0, "shrink must contract");
        h.validate().unwrap();
    }

    #[cfg(feature = "stats")]
    #[test]
    fn mixed_workload_set_point_reproduces_paper_thrash() {
        // The paper's complaint (§3.2, Graph 2): with a single
        // utilisation set-point, constant population still reorganises
        // near-constantly.
        let mut h = LinearHash::with_thresholds(NaturalAdapter::new(), 4, 0.80, 0.80);
        for k in 0..2000u64 {
            h.insert(k);
        }
        h.reset_stats();
        let mut rng = testkit::TestRng::new(31);
        for i in 0..4000u64 {
            let _ = h.delete(&(i % 2000));
            let k = 2000 + rng.below(1 << 30);
            h.insert(k);
            let _ = h.delete(&k);
            h.insert(i % 2000);
        }
        let r = h.stats().restructures;
        assert!(r > 0, "set-point table must keep reorganising, got none");
        h.validate().unwrap();
    }

    #[test]
    fn duplicates() {
        let mut h = LinearHash::new(DupAdapter, 4);
        for low in 0..100u64 {
            h.insert((2 << 16) | low);
        }
        h.validate().unwrap();
        let mut out = Vec::new();
        h.search_all(&2, &mut out);
        assert_eq!(out.len(), 100);
        assert!(h.delete_entry(&((2 << 16) | 42)));
        out.clear();
        h.search_all(&2, &mut out);
        assert_eq!(out.len(), 99);
    }

    #[test]
    fn differential_vs_model() {
        for cap in [1usize, 4, 16] {
            let mut h = LinearHash::new(DupAdapter, cap);
            testkit::unordered_differential(DupAdapter, &mut h, 0x71E + cap as u64, 5000, 300);
        }
    }

    #[test]
    fn scan_complete() {
        let mut h = nat(8);
        for k in 0..1000u64 {
            h.insert(k);
        }
        let mut seen = Vec::new();
        h.scan(&mut |e| seen.push(*e));
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn insert_unique() {
        let mut h = LinearHash::new(DupAdapter, 4);
        h.insert_unique((9 << 16) | 1).unwrap();
        assert_eq!(
            h.insert_unique((9 << 16) | 2),
            Err(IndexError::DuplicateKey)
        );
    }
}
