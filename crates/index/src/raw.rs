//! Raw structural views for the `mmdb-check` verification layer.
//!
//! Only compiled with the `check` cargo feature. Each index exposes
//! `raw_*` accessors returning these owned snapshots of its internal
//! arena/directory state, so the external checker can re-derive every
//! structural invariant (ordering, balance, occupancy, chain addressing)
//! without the index crate leaking mutable internals — and without the
//! checker trusting the index's own `validate()`.

/// A binary-tree node view (T-Tree and AVL; an AVL node has one entry).
#[derive(Debug, Clone)]
pub struct TreeNodeView<E> {
    /// Arena id of this node.
    pub id: u32,
    /// The node's sorted entries (`entries[0]` is the node minimum).
    pub entries: Vec<E>,
    /// Left child arena id, if any.
    pub left: Option<u32>,
    /// Right child arena id, if any.
    pub right: Option<u32>,
    /// Parent arena id (`None` for the root).
    pub parent: Option<u32>,
    /// The height stored in the node (nil = 0, leaf = 1).
    pub height: i32,
}

/// A B-Tree node view.
#[derive(Debug, Clone)]
pub struct BTreeNodeView<E> {
    /// Arena id of this node.
    pub id: u32,
    /// Sorted separator/data entries (data lives in interior nodes too).
    pub entries: Vec<E>,
    /// Child arena ids; empty for a leaf, `entries.len() + 1` otherwise
    /// (when the structure is intact — the checker verifies exactly that).
    pub children: Vec<u32>,
}

/// A hash bucket (or overflow chain) view, in chain order.
#[derive(Debug, Clone)]
pub struct BucketView<E> {
    /// Bucket index in the table/directory.
    pub bucket: usize,
    /// Entries in chain/page order.
    pub entries: Vec<E>,
    /// True when the chain walk was cut short because it exceeded the
    /// arena size — i.e. the chain contains a cycle.
    pub truncated: bool,
}

/// An extendible-hashing bucket view.
#[derive(Debug, Clone)]
pub struct ExtBucketView<E> {
    /// Arena id of the bucket (what directory slots point at).
    pub id: u32,
    /// Bits of the hash this bucket claims.
    pub local_depth: u32,
    /// The low `local_depth` bits shared by every entry in the bucket.
    pub pattern: u64,
    /// Stored entries.
    pub entries: Vec<E>,
}
