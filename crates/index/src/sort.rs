//! The paper's sort kernel (§3.3.2, footnote 6) plus the cache-conscious
//! run-formation variant used by the overhauled execution kernels.
//!
//! *"The sort was done using quicksort with an insertion sort for subarrays
//! of ten elements or less. We ran a test to determine the optimal subarray
//! size for switching from quicksort to insertion sort; the optimal
//! subarray size was 10."*
//!
//! Used by the Sort Merge join (sorting freshly built array indexes) and by
//! the Sort Scan duplicate-elimination method. Instrumented with the same
//! comparison / data-movement counters as the index structures so the
//! experiment harness can validate operation counts.
//!
//! [`run_sort`] layers the DPG design on top: quicksort cache-resident
//! runs, then merge them with a d-ary heap small enough to live in L1.
//! Large sorts stop streaming the whole array through cache per quicksort
//! level; every element is touched once per phase instead.

use crate::stats::Counters;
use std::cmp::Ordering;

/// Subarray size at or below which quicksort hands off to insertion sort —
/// the paper's empirically tuned value.
pub const INSERTION_CUTOFF: usize = 10;

/// Fan-out of the run-merge heap in [`run_sort`]. A 4-ary heap halves the
/// tree height of a binary heap while each node's children still share one
/// cache line of run ids — the "d-ary heap in cache" choice from DPG.
pub const MERGE_FANOUT: usize = 4;

/// Sort `data` in place with `cmp`, using the paper's hybrid
/// quicksort/insertion-sort with the default cutoff of
/// [`INSERTION_CUTOFF`].
pub fn quicksort<T: Copy>(
    data: &mut [T],
    stats: &Counters,
    mut cmp: impl FnMut(&T, &T) -> Ordering,
) {
    quicksort_with_cutoff(data, INSERTION_CUTOFF, stats, &mut cmp);
}

/// Sort with an explicit insertion-sort cutoff (exposed for the ablation
/// benchmark that re-runs the paper's footnote-6 tuning experiment).
pub fn quicksort_with_cutoff<T: Copy>(
    data: &mut [T],
    cutoff: usize,
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) {
    if data.len() > 1 {
        qsort_rec(data, cutoff, stats, cmp);
        insertion_sort(data, stats, cmp);
    }
}

/// Cache-conscious sort: quicksort `data` in runs of at most `run_len`
/// elements (pick `run_len` so one run fits L2), then merge the sorted
/// runs with a [`MERGE_FANOUT`]-ary heap of run heads.
///
/// Equal elements (where `cmp` returns `Equal`) come back in ascending
/// run order (the quicksort within a run is unstable but deterministic),
/// so for a fixed `run_len` the output is a pure function of the input.
/// Comparison and data-move counts accumulate into `stats` exactly like
/// [`quicksort`].
// mmdb-lint: allow(panic-path) — heap entries are run ids < runs, `pos`/`ends` hold one cursor per run, and every cursor satisfies r*run_len <= pos[r] <= ends[r] <= n (a run id is popped exactly when its cursor reaches ends[r]); heap child indices are checked against heap.len() before use
pub fn run_sort<T: Copy>(
    data: &mut Vec<T>,
    run_len: usize,
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) {
    let n = data.len();
    let run_len = run_len.max(2);
    if n <= run_len {
        quicksort_with_cutoff(data, INSERTION_CUTOFF, stats, cmp);
        return;
    }
    for run in data.chunks_mut(run_len) {
        quicksort_with_cutoff(run, INSERTION_CUTOFF, stats, cmp);
    }
    let runs = n.div_ceil(run_len);
    // Per-run cursor into `data`; run r spans r*run_len .. ends[r].
    let mut pos: Vec<usize> = (0..runs).map(|r| r * run_len).collect();
    let ends: Vec<usize> = (0..runs).map(|r| ((r + 1) * run_len).min(n)).collect();
    // d-ary min-heap of run ids, keyed by each run's head element with the
    // run id as tie-break (equal keys drain in run order). The heap holds
    // only `runs` small integers — cache-resident however big `data` is.
    fn run_less<T: Copy>(
        data: &[T],
        pos: &[usize],
        stats: &Counters,
        cmp: &mut impl FnMut(&T, &T) -> Ordering,
        a: u32,
        b: u32,
    ) -> bool {
        stats.comparisons(1);
        match cmp(&data[pos[a as usize]], &data[pos[b as usize]]) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        }
    }
    fn sift_down<T: Copy>(
        heap: &mut [u32],
        data: &[T],
        pos: &[usize],
        stats: &Counters,
        cmp: &mut impl FnMut(&T, &T) -> Ordering,
    ) {
        let mut i = 0;
        loop {
            let first_child = i * MERGE_FANOUT + 1;
            if first_child >= heap.len() {
                break;
            }
            let mut best = first_child;
            for c in first_child + 1..(first_child + MERGE_FANOUT).min(heap.len()) {
                if run_less(data, pos, stats, cmp, heap[c], heap[best]) {
                    best = c;
                }
            }
            if run_less(data, pos, stats, cmp, heap[best], heap[i]) {
                heap.swap(i, best);
                i = best;
            } else {
                break;
            }
        }
    }
    let mut heap: Vec<u32> = Vec::with_capacity(runs);
    for r in 0..runs as u32 {
        heap.push(r);
        // Sift up: walk ancestors while the new run's head is smaller.
        let mut i = heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / MERGE_FANOUT;
            if run_less(data, &pos, stats, cmp, heap[i], heap[parent]) {
                heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }
    let mut out: Vec<T> = Vec::with_capacity(n);
    while !heap.is_empty() {
        let r = heap[0] as usize;
        out.push(data[pos[r]]);
        stats.data_moves(1);
        pos[r] += 1;
        if pos[r] == ends[r] {
            let last = heap.len() - 1;
            heap.swap(0, last);
            heap.pop();
        }
        sift_down(&mut heap, data, &pos, stats, cmp);
    }
    *data = out;
}

/// Plain insertion sort; fast on nearly-sorted and tiny inputs. The paper
/// notes it also benefits from heavy duplication ("with many equal values,
/// the subarray in quicksort is often already sorted by the time it is
/// passed to the insertion sort").
// mmdb-lint: allow(panic-path) — i ranges over 1..len and j only moves down from i while j > 0, so data[i], data[j], and data[j - 1] stay within 0..len
pub fn insertion_sort<T: Copy>(
    data: &mut [T],
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) {
    for i in 1..data.len() {
        let v = data[i];
        let mut j = i;
        while j > 0 {
            stats.comparisons(1);
            if cmp(&data[j - 1], &v) == Ordering::Greater {
                data[j] = data[j - 1];
                stats.data_moves(1);
                j -= 1;
            } else {
                break;
            }
        }
        if j != i {
            data[j] = v;
            stats.data_moves(1);
        }
    }
}

// mmdb-lint: allow(panic-path) — the loop guard hi - lo > cutoff.max(2) keeps lo < hi <= len, and partition returns a position inside the lo..hi slice it was given
fn qsort_rec<T: Copy>(
    data: &mut [T],
    cutoff: usize,
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) {
    let mut lo = 0usize;
    let mut hi = data.len();
    // Iterate on the larger side, recurse on the smaller: O(log n) stack.
    // Partitioning needs at least 3 elements (median-of-three), so slices
    // at or below max(cutoff, 2) are left to the final insertion sort.
    while hi - lo > cutoff.max(2) {
        let p = partition(&mut data[lo..hi], stats, cmp) + lo;
        if p - lo < hi - p - 1 {
            qsort_rec_range(data, lo, p, cutoff, stats, cmp);
            lo = p + 1;
        } else {
            qsort_rec_range(data, p + 1, hi, cutoff, stats, cmp);
            hi = p;
        }
    }
}

// mmdb-lint: allow(panic-path) — callers pass lo/hi derived from a partition point inside data, so data[lo..hi] is in bounds
fn qsort_rec_range<T: Copy>(
    data: &mut [T],
    lo: usize,
    hi: usize,
    cutoff: usize,
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) {
    if hi - lo > cutoff.max(2) {
        qsort_rec(&mut data[lo..hi], cutoff, stats, cmp);
    }
}

/// Hoare-style partition with median-of-three pivot selection; returns the
/// final pivot position.
// mmdb-lint: allow(panic-path) — only called on slices of length > cutoff.max(2) >= 3, so indices 0, mid = n/2, n - 1, and n - 2 all exist, and the Hoare cursors are bounds-checked before every dereference
fn partition<T: Copy>(
    data: &mut [T],
    stats: &Counters,
    cmp: &mut impl FnMut(&T, &T) -> Ordering,
) -> usize {
    let n = data.len();
    let mid = n / 2;
    // Median-of-three: order data[0], data[mid], data[n-1].
    stats.comparisons(3);
    if cmp(&data[mid], &data[0]) == Ordering::Less {
        data.swap(mid, 0);
        stats.data_moves(2);
    }
    if cmp(&data[n - 1], &data[0]) == Ordering::Less {
        data.swap(n - 1, 0);
        stats.data_moves(2);
    }
    if cmp(&data[n - 1], &data[mid]) == Ordering::Less {
        data.swap(n - 1, mid);
        stats.data_moves(2);
    }
    // Use the median (now at mid) as pivot; park it at n-2.
    data.swap(mid, n - 2);
    stats.data_moves(2);
    let pivot = data[n - 2];
    let mut i = 0usize;
    let mut j = n - 2;
    loop {
        loop {
            i += 1;
            stats.comparisons(1);
            if i >= n - 2 || cmp(&data[i], &pivot) != Ordering::Less {
                break;
            }
        }
        loop {
            j -= 1;
            stats.comparisons(1);
            if j == 0 || cmp(&pivot, &data[j]) != Ordering::Less {
                break;
            }
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
        stats.data_moves(2);
    }
    data.swap(i, n - 2);
    stats.data_moves(2);
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Counters;

    fn check_sorts(mut v: Vec<u64>) {
        let stats = Counters::default();
        let mut expect = v.clone();
        expect.sort_unstable();
        quicksort(&mut v, &stats, |a, b| a.cmp(b));
        assert_eq!(v, expect);
    }

    #[test]
    fn sorts_empty_and_singleton() {
        check_sorts(vec![]);
        check_sorts(vec![7]);
    }

    #[test]
    fn sorts_small_arrays() {
        check_sorts(vec![3, 1, 2]);
        check_sorts(vec![2, 1]);
        check_sorts((0..10).rev().collect());
    }

    #[test]
    fn sorts_already_sorted() {
        check_sorts((0..1000).collect());
    }

    #[test]
    fn sorts_reverse_sorted() {
        check_sorts((0..1000).rev().collect());
    }

    #[test]
    fn sorts_random() {
        // Deterministic pseudo-random input.
        let mut x = 0x1234_5678_u64;
        let v: Vec<u64> = (0..5000)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x % 10_000
            })
            .collect();
        check_sorts(v);
    }

    #[test]
    fn sorts_all_duplicates() {
        check_sorts(vec![5; 2000]);
    }

    #[test]
    fn sorts_few_distinct_values() {
        let mut x = 9u64;
        let v: Vec<u64> = (0..3000)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x % 3
            })
            .collect();
        check_sorts(v);
    }

    #[test]
    fn cutoff_zero_and_large_both_sort() {
        for cutoff in [0, 1, 2, 50, 10_000] {
            let mut x = 42u64;
            let mut v: Vec<u64> = (0..2500)
                .map(|_| {
                    x = crate::adapter::mix64(x);
                    x % 500
                })
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            let stats = Counters::default();
            quicksort_with_cutoff(&mut v, cutoff, &stats, &mut |a, b| a.cmp(b));
            assert_eq!(v, expect, "cutoff {cutoff}");
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn counts_comparisons_roughly_n_log_n() {
        let n = 4096u64;
        let mut x = 7u64;
        let mut v: Vec<u64> = (0..n)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x
            })
            .collect();
        let stats = Counters::default();
        quicksort(&mut v, &stats, |a, b| a.cmp(b));
        let c = stats.snapshot().comparisons as f64;
        let nlogn = (n as f64) * (n as f64).log2();
        assert!(c > nlogn * 0.5, "too few comparisons: {c} vs {nlogn}");
        assert!(c < nlogn * 6.0, "too many comparisons: {c} vs {nlogn}");
    }

    #[test]
    fn insertion_sort_standalone() {
        let stats = Counters::default();
        let mut v = vec![5u64, 4, 3, 2, 1, 10, 9, 8];
        insertion_sort(&mut v, &stats, &mut |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3, 4, 5, 8, 9, 10]);
    }

    fn check_run_sorts(v: Vec<u64>, run_len: usize) {
        let stats = Counters::default();
        let mut expect = v.clone();
        expect.sort_unstable();
        let mut got = v;
        run_sort(&mut got, run_len, &stats, &mut |a, b| a.cmp(b));
        assert_eq!(got, expect, "run_len {run_len}");
    }

    #[test]
    fn run_sort_edge_cases() {
        for run_len in [0, 1, 2, 3, 7, 100] {
            check_run_sorts(vec![], run_len);
            check_run_sorts(vec![9], run_len);
            check_run_sorts(vec![2, 1], run_len);
            check_run_sorts((0..37).rev().collect(), run_len);
        }
    }

    #[test]
    fn run_sort_matches_quicksort_on_random() {
        let mut x = 0xdead_beef_u64;
        let v: Vec<u64> = (0..5000)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x % 700
            })
            .collect();
        // run_len spanning: many tiny runs, runs around boundaries, one run.
        for run_len in [2, 3, 64, 999, 1000, 1001, 4999, 5000, 5001, 100_000] {
            check_run_sorts(v.clone(), run_len);
        }
    }

    #[test]
    fn run_sort_all_duplicates_and_few_distinct() {
        check_run_sorts(vec![5; 2000], 100);
        let mut x = 11u64;
        let v: Vec<u64> = (0..3000)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x % 3
            })
            .collect();
        check_run_sorts(v, 128);
    }

    #[test]
    fn run_sort_equal_keys_drain_in_run_order() {
        // Pairs (key, origin); comparator only looks at key. With every key
        // equal, the merge must drain run 0 completely, then run 1, … —
        // the output is exactly the per-run quicksorted chunks concatenated.
        let n = 257usize;
        let run_len = 16usize;
        let v: Vec<(u64, u64)> = (0..n as u64).map(|i| (42, i)).collect();
        let mut expect = v.clone();
        for chunk in expect.chunks_mut(run_len) {
            let s = Counters::default();
            quicksort_with_cutoff(
                chunk,
                INSERTION_CUTOFF,
                &s,
                &mut |a: &(u64, u64), b: &(u64, u64)| a.0.cmp(&b.0),
            );
        }
        let mut got = v;
        let stats = Counters::default();
        run_sort(&mut got, run_len, &stats, &mut |a, b| a.0.cmp(&b.0));
        assert_eq!(got, expect);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn run_sort_counts_comparisons() {
        let n = 4096u64;
        let mut x = 3u64;
        let mut v: Vec<u64> = (0..n)
            .map(|_| {
                x = crate::adapter::mix64(x);
                x
            })
            .collect();
        let stats = Counters::default();
        run_sort(&mut v, 256, &stats, &mut |a, b| a.cmp(b));
        let c = stats.snapshot().comparisons as f64;
        let nlogn = (n as f64) * (n as f64).log2();
        assert!(c > nlogn * 0.5, "too few comparisons: {c} vs {nlogn}");
        assert!(c < nlogn * 6.0, "too many comparisons: {c} vs {nlogn}");
    }
}
