//! The T-Tree (§3.2.1) — the paper's new index structure.
//!
//! *"The T Tree is a binary tree with many elements per node … Since the
//! T Tree is a binary tree, it retains the intrinsic binary search nature
//! of the AVL Tree, and, because a T node contains many elements, the
//! T Tree has the good update and storage characteristics of the B Tree."*
//!
//! Terminology from the paper:
//! * **internal node** — two subtrees; occupancy kept within
//!   `[min_count, max_count]` (best effort — see below).
//! * **half-leaf** — exactly one child.
//! * **leaf** — no children; occupancy ranges from zero (transiently) to
//!   `max_count`.
//! * node *N* **bounds** value *x* iff `min(N) ≤ x ≤ max(N)`.
//! * the **greatest lower bound** (GLB) of an internal node is the largest
//!   value in its left subtree, held by the rightmost node there.
//!
//! Algorithms implemented exactly as described in §3.2.1:
//! * **Search** — binary-tree descent comparing against node min/max, then
//!   a binary search of the bounding node.
//! * **Insert** — into the bounding node; on overflow the *minimum* element
//!   is spilled to the GLB leaf (footnote 5: moving the minimum requires
//!   less data movement than the maximum); if no bounding node exists the
//!   value goes to the node where the search ended, growing a new leaf and
//!   rebalancing (AVL rotations) if that node is full.
//! * **Delete** — from the bounding node; internal-node underflow borrows
//!   the GLB from a leaf; an emptied leaf is unlinked and the tree
//!   rebalanced; leaves are otherwise allowed to underflow.
//! * **Rotations** — AVL-style; after an LR/RL double rotation promotes a
//!   sparsely filled node to subtree root, elements are transferred from
//!   its GLB node so internal occupancy returns to `min_count` (the
//!   "special rotation" of \[LeC85\]).
//!
//! The min/max slack ("the minimum and maximum counts will usually differ
//! by just a small amount, on the order of one or two items") is
//! configurable via [`TTreeConfig::slack`] and ablated in the benchmarks.

use crate::adapter::Adapter;
use crate::stats::{Counters, Snapshot};
use crate::traits::{bound_ok_hi, IndexError, OrderedIndex};
use std::cmp::Ordering;
use std::ops::Bound;

const NIL: u32 = u32::MAX;

/// Configuration for a [`TTree`].
#[derive(Debug, Clone, Copy)]
pub struct TTreeConfig {
    /// Maximum elements per node (the paper's *maximum count*; the "Node
    /// Size" axis of Graphs 1 and 2).
    pub max_count: usize,
    /// `max_count - min_count` for internal nodes. The paper found one or
    /// two items of slack "enough to significantly reduce the need for
    /// tree rotations".
    pub slack: usize,
}

impl Default for TTreeConfig {
    fn default() -> Self {
        // A mid-sized node: the paper's Graph 2 shows flat good behaviour
        // for T-Tree node sizes in the tens.
        TTreeConfig {
            max_count: 30,
            slack: 2,
        }
    }
}

impl TTreeConfig {
    /// Config with a given node size and the default slack of 2.
    #[must_use]
    pub fn with_node_size(max_count: usize) -> Self {
        TTreeConfig {
            max_count: max_count.max(1),
            slack: 2,
        }
    }

    /// Minimum elements for an internal node (`max_count - slack`, at
    /// least 1) — the paper's *minimum count*.
    #[must_use]
    pub fn min_count(&self) -> usize {
        self.max_count.saturating_sub(self.slack).max(1)
    }
}

struct Node<E> {
    /// Sorted elements; `items[0]` is the node minimum, the last element
    /// the node maximum.
    items: Vec<E>,
    /// Descent key cache: [`Adapter::entry_tag`] of `items[0]` and of the
    /// last item. Unequal tags decide the bounding test during descent
    /// without dereferencing the entry; equal tags (always, for adapters
    /// keeping the default tag of 0) fall back to the full comparison.
    min_tag: u64,
    max_tag: u64,
    left: u32,
    right: u32,
    parent: u32,
    height: i32,
}

/// Where a bounding-node search ended.
enum Probe {
    /// `id` bounds the value.
    Bounds(u32),
    /// Fell off node `id` heading left (`true`) or right (`false`).
    Off(u32, bool),
    /// Empty tree.
    Empty,
}

/// The T-Tree index.
pub struct TTree<A: Adapter> {
    adapter: A,
    config: TTreeConfig,
    nodes: Vec<Node<A::Entry>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
    stats: Counters,
}

impl<A: Adapter> TTree<A> {
    /// Create an empty T-Tree.
    pub fn new(adapter: A, config: TTreeConfig) -> Self {
        TTree {
            adapter,
            config,
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
            stats: Counters::default(),
        }
    }

    /// Create with the default configuration.
    pub fn with_default_config(adapter: A) -> Self {
        TTree::new(adapter, TTreeConfig::default())
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> TTreeConfig {
        self.config
    }

    fn node(&self, id: u32) -> &Node<A::Entry> {
        &self.nodes[id as usize]
    }

    fn node_mut(&mut self, id: u32) -> &mut Node<A::Entry> {
        &mut self.nodes[id as usize]
    }

    fn alloc(&mut self, first: A::Entry, parent: u32) -> u32 {
        let mut items = Vec::with_capacity(self.config.max_count);
        let tag = self.adapter.entry_tag(&first);
        items.push(first);
        let n = Node {
            items,
            min_tag: tag,
            max_tag: tag,
            left: NIL,
            right: NIL,
            parent,
            height: 1,
        };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = n;
            id
        } else {
            self.nodes.push(n);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Recompute node `id`'s cached bounding-key tags from its items.
    /// Called after every item mutation; an emptied node gets `(0, 0)`
    /// (it is either about to be unlinked or refilled).
    fn refresh_tags(&mut self, id: u32) {
        let (min_tag, max_tag) = {
            let items = &self.node(id).items;
            match (items.first(), items.last()) {
                (Some(a), Some(b)) => (self.adapter.entry_tag(a), self.adapter.entry_tag(b)),
                _ => (0, 0),
            }
        };
        let n = self.node_mut(id);
        n.min_tag = min_tag;
        n.max_tag = max_tag;
    }

    fn height(&self, id: u32) -> i32 {
        if id == NIL {
            0
        } else {
            self.node(id).height
        }
    }

    fn is_internal(&self, id: u32) -> bool {
        let n = self.node(id);
        n.left != NIL && n.right != NIL
    }

    fn update_height(&mut self, id: u32) {
        let h = 1 + self
            .height(self.node(id).left)
            .max(self.height(self.node(id).right));
        self.node_mut(id).height = h;
    }

    fn balance(&self, id: u32) -> i32 {
        self.height(self.node(id).left) - self.height(self.node(id).right)
    }

    fn replace_child(&mut self, parent: u32, old: u32, new: u32) {
        if parent == NIL {
            self.root = new;
        } else if self.node(parent).left == old {
            self.node_mut(parent).left = new;
        } else {
            debug_assert_eq!(self.node(parent).right, old);
            self.node_mut(parent).right = new;
        }
        if new != NIL {
            self.node_mut(new).parent = parent;
        }
    }

    fn rotate_left(&mut self, x: u32) -> u32 {
        self.stats.rotations(1);
        let y = self.node(x).right;
        let parent = self.node(x).parent;
        let t = self.node(y).left;
        self.node_mut(x).right = t;
        if t != NIL {
            self.node_mut(t).parent = x;
        }
        self.node_mut(y).left = x;
        self.node_mut(x).parent = y;
        self.replace_child(parent, x, y);
        self.update_height(x);
        self.update_height(y);
        y
    }

    fn rotate_right(&mut self, x: u32) -> u32 {
        self.stats.rotations(1);
        let y = self.node(x).left;
        let parent = self.node(x).parent;
        let t = self.node(y).right;
        self.node_mut(x).left = t;
        if t != NIL {
            self.node_mut(t).parent = x;
        }
        self.node_mut(y).right = x;
        self.node_mut(x).parent = y;
        self.replace_child(parent, x, y);
        self.update_height(x);
        self.update_height(y);
        y
    }

    /// \[LeC85\]'s special-rotation fix-up: a double rotation can promote a
    /// nearly empty node (often a freshly grown one-element leaf) to
    /// subtree root, where it now *bounds* a wide key range with few
    /// elements. Refill it from its greatest-lower-bound node so internal
    /// occupancy returns to `min_count`.
    fn refill_internal(&mut self, id: u32) {
        if !self.is_internal(id) {
            return;
        }
        let need = self
            .config
            .min_count()
            .saturating_sub(self.node(id).items.len());
        if need == 0 {
            return;
        }
        let g = self.rightmost(self.node(id).left);
        // Never empty the donor here; structural removal during rotation
        // fix-up would cascade.
        let avail = self.node(g).items.len().saturating_sub(1);
        let take = need.min(avail);
        if take == 0 {
            return;
        }
        let gl = self.node(g).items.len();
        let moved: Vec<A::Entry> = self.node_mut(g).items.drain(gl - take..).collect();
        self.stats.data_moves(take as u64);
        let n = self.node_mut(id);
        for (i, e) in moved.into_iter().enumerate() {
            n.items.insert(i, e);
        }
        self.refresh_tags(g);
        self.refresh_tags(id);
    }

    fn rebalance_node(&mut self, id: u32) -> u32 {
        self.update_height(id);
        let bf = self.balance(id);
        if bf > 1 {
            let new_root = if self.balance(self.node(id).left) < 0 {
                let l = self.node(id).left;
                self.rotate_left(l);
                self.rotate_right(id)
            } else {
                self.rotate_right(id)
            };
            self.refill_internal(new_root);
            new_root
        } else if bf < -1 {
            let new_root = if self.balance(self.node(id).right) > 0 {
                let r = self.node(id).right;
                self.rotate_right(r);
                self.rotate_left(id)
            } else {
                self.rotate_left(id)
            };
            self.refill_internal(new_root);
            new_root
        } else {
            id
        }
    }

    fn rebalance_upward(&mut self, mut cur: u32) {
        while cur != NIL {
            let sub_root = self.rebalance_node(cur);
            cur = self.node(sub_root).parent;
        }
    }

    fn leftmost(&self, mut id: u32) -> u32 {
        while self.node(id).left != NIL {
            id = self.node(id).left;
        }
        id
    }

    fn rightmost(&self, mut id: u32) -> u32 {
        while self.node(id).right != NIL {
            id = self.node(id).right;
        }
        id
    }

    fn successor_node(&self, id: u32) -> u32 {
        if self.node(id).right != NIL {
            return self.leftmost(self.node(id).right);
        }
        let mut cur = id;
        let mut p = self.node(id).parent;
        while p != NIL && self.node(p).right == cur {
            cur = p;
            p = self.node(p).parent;
        }
        p
    }

    /// Decide an ordering from two key tags alone: unequal tags are
    /// conclusive (monotonicity), equal tags decide nothing.
    #[inline]
    fn tag_cmp(probe: u64, bound: u64) -> Option<Ordering> {
        match probe.cmp(&bound) {
            Ordering::Equal => None,
            o => Some(o),
        }
    }

    /// The paper's descent: compare against node min and max, then binary
    /// search the bounding node. The min/max comparisons consult the
    /// node's cached key tags first and dereference the bounding entry
    /// only when the tags tie; either way each decision is counted as one
    /// comparison, so the §3.3.4 cost model and the comparison-count
    /// experiments are unaffected by the cache.
    fn probe_entry(&self, entry: &A::Entry) -> Probe {
        if self.root == NIL {
            return Probe::Empty;
        }
        let tag = self.adapter.entry_tag(entry);
        let mut cur = self.root;
        loop {
            self.stats.node_visits(1);
            let n = self.node(cur);
            self.stats.comparisons(1);
            let below = match Self::tag_cmp(tag, n.min_tag) {
                Some(o) => o == Ordering::Less,
                None => self.adapter.cmp_entries(entry, &n.items[0]) == Ordering::Less,
            };
            if below {
                if n.left == NIL {
                    return Probe::Off(cur, true);
                }
                cur = n.left;
                continue;
            }
            self.stats.comparisons(1);
            let above = match Self::tag_cmp(tag, n.max_tag) {
                Some(o) => o == Ordering::Greater,
                None => {
                    self.adapter.cmp_entries(entry, &n.items[n.items.len() - 1])
                        == Ordering::Greater
                }
            };
            if above {
                if n.right == NIL {
                    return Probe::Off(cur, false);
                }
                cur = n.right;
                continue;
            }
            return Probe::Bounds(cur);
        }
    }

    /// Binary search within node `id` for the first position whose item
    /// compares ≥ using `cmp`; `cmp(item)` returns the ordering of `item`
    /// relative to the probe.
    fn node_lower_bound_by(&self, id: u32, mut cmp: impl FnMut(&A::Entry) -> Ordering) -> usize {
        let items = &self.node(id).items;
        let mut lo = 0usize;
        let mut hi = items.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.stats.comparisons(1);
            if cmp(&items[mid]) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Tree-order position of the first entry with key ≥ `key`:
    /// `(node, index)` or `None`.
    fn lower_bound_key(&self, key: &A::Key) -> Option<(u32, usize)> {
        self.lower_bound_by(|e| self.adapter.cmp_entry_key(e, key))
    }

    fn lower_bound_by(&self, cmp: impl Fn(&A::Entry) -> Ordering + Copy) -> Option<(u32, usize)> {
        let mut cur = self.root;
        let mut best = None;
        while cur != NIL {
            self.stats.node_visits(1);
            let pos = self.node_lower_bound_by(cur, cmp);
            let n = self.node(cur);
            if pos == 0 {
                best = Some((cur, 0));
                cur = n.left;
            } else if pos == n.items.len() {
                cur = n.right;
            } else {
                return Some((cur, pos));
            }
        }
        best
    }

    /// Advance a `(node, index)` cursor one entry in tree order.
    fn advance(&self, node: u32, idx: usize) -> Option<(u32, usize)> {
        if idx + 1 < self.node(node).items.len() {
            return Some((node, idx + 1));
        }
        let s = self.successor_node(node);
        if s == NIL {
            None
        } else {
            Some((s, 0))
        }
    }

    /// Insert `entry` into node `id` keeping the node sorted.
    fn node_insert_sorted(&mut self, id: u32, entry: A::Entry) {
        let pos = {
            let items = &self.node(id).items;
            let mut lo = 0usize;
            let mut hi = items.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                self.stats.comparisons(1);
                if self.adapter.cmp_entries(&items[mid], &entry) == Ordering::Greater {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        };
        let moves = (self.node(id).items.len() - pos) as u64 + 1;
        self.stats.data_moves(moves);
        self.node_mut(id).items.insert(pos, entry);
        self.refresh_tags(id);
    }

    /// Grow a new one-element leaf under `parent` on the given side.
    fn grow_leaf(&mut self, parent: u32, left_side: bool, entry: A::Entry) {
        self.stats.restructures(1);
        let id = self.alloc(entry, parent);
        if left_side {
            debug_assert_eq!(self.node(parent).left, NIL);
            self.node_mut(parent).left = id;
        } else {
            debug_assert_eq!(self.node(parent).right, NIL);
            self.node_mut(parent).right = id;
        }
        self.rebalance_upward(parent);
    }

    /// Spill the minimum of full node `id` to its GLB position (§3.2.1
    /// insert-overflow rule), then insert `entry` into `id`.
    fn insert_with_spill(&mut self, id: u32, entry: A::Entry) {
        let min_elem = self.node_mut(id).items.remove(0);
        self.stats.data_moves(self.node(id).items.len() as u64 + 1);
        self.node_insert_sorted(id, entry);
        let left = self.node(id).left;
        if left == NIL {
            // The spilled minimum becomes the first GLB: a new left leaf.
            self.grow_leaf(id, true, min_elem);
            return;
        }
        let g = self.rightmost(left);
        if self.node(g).items.len() < self.config.max_count {
            self.node_mut(g).items.push(min_elem);
            self.refresh_tags(g);
            self.stats.data_moves(1);
        } else {
            // GLB node full: grow a new leaf as its right child (it is the
            // rightmost of the left subtree, so that slot is free).
            self.grow_leaf(g, false, min_elem);
        }
    }

    fn insert_inner(&mut self, entry: A::Entry) {
        match self.probe_entry(&entry) {
            Probe::Empty => {
                self.root = self.alloc(entry, NIL);
            }
            Probe::Bounds(id) => {
                if self.node(id).items.len() < self.config.max_count {
                    self.node_insert_sorted(id, entry);
                } else {
                    self.insert_with_spill(id, entry);
                }
            }
            Probe::Off(id, left_side) => {
                if self.node(id).items.len() < self.config.max_count {
                    // The value extends this node's range (new min or max).
                    if left_side {
                        let moves = self.node(id).items.len() as u64 + 1;
                        self.stats.data_moves(moves);
                        self.node_mut(id).items.insert(0, entry);
                    } else {
                        self.stats.data_moves(1);
                        self.node_mut(id).items.push(entry);
                    }
                    self.refresh_tags(id);
                } else {
                    self.grow_leaf(id, left_side, entry);
                }
            }
        }
        self.len += 1;
    }

    /// Unlink node `id`, which must have at most one child, then rebalance.
    fn remove_structural(&mut self, id: u32) {
        self.stats.restructures(1);
        let n = self.node(id);
        debug_assert!(
            n.left == NIL || n.right == NIL,
            "structural removal needs ≤1 child"
        );
        let child = if n.left != NIL { n.left } else { n.right };
        let parent = n.parent;
        self.replace_child(parent, id, child);
        self.free.push(id);
        if parent != NIL {
            self.rebalance_upward(parent);
        } else if child != NIL {
            self.rebalance_upward(child);
        }
    }

    /// Remove the item at `(id, pos)` and restore §3.2.1's delete
    /// invariants.
    fn remove_at(&mut self, id: u32, pos: usize) -> A::Entry {
        let e = self.node_mut(id).items.remove(pos);
        self.stats
            .data_moves((self.node(id).items.len() - pos) as u64);
        self.refresh_tags(id);
        self.len -= 1;

        if self.is_internal(id) {
            if self.node(id).items.len() < self.config.min_count() {
                // Borrow the greatest lower bound from a leaf.
                let g = self.rightmost(self.node(id).left);
                let borrowed =
                    crate::pop_invariant(&mut self.node_mut(g).items, "GLB node is non-empty");
                self.stats.data_moves(2);
                self.node_mut(id).items.insert(0, borrowed);
                self.refresh_tags(g);
                self.refresh_tags(id);
                if self.node(g).items.is_empty() {
                    self.remove_structural(g);
                }
            }
        } else if self.node(id).items.is_empty() {
            // An emptied leaf is deleted; an emptied half-leaf is spliced
            // out (its single child takes its place). A leaf that merely
            // underflows is left alone ("the node … is allowed to
            // underflow").
            self.remove_structural(id);
        }
        e
    }

    /// A rewindable ordered cursor starting at the smallest entry — the
    /// scan interface merge joins need (\[BlE77\] re-scans each group of
    /// equal inner keys once per matching outer tuple; rewinding a T-Tree
    /// cursor re-walks the node chain, which is exactly the pointer-chase
    /// cost §3.3.4 Test 4 measures against the array's contiguous scan).
    pub fn cursor(&self) -> TTreeCursor<'_, A> {
        let pos = if self.root == NIL {
            None
        } else {
            Some((self.leftmost(self.root), 0))
        };
        TTreeCursor { tree: self, pos }
    }

    /// Ordered iterator over all entries.
    pub fn iter(&self) -> TTreeIter<'_, A> {
        let pos = if self.root == NIL {
            None
        } else {
            Some((self.leftmost(self.root), 0))
        };
        TTreeIter { tree: self, pos }
    }

    /// Iterator over all entries with key ≥ the probe, in order — the scan
    /// entry point used by the Tree Merge join and by §3.3.5's ordered
    /// (`<`, `≤`, `>`, `≥`) join support.
    pub fn iter_from(&self, key: &A::Key) -> TTreeIter<'_, A> {
        TTreeIter {
            tree: self,
            pos: self.lower_bound_key(key),
        }
    }

    /// Average occupancy of internal nodes (diagnostic; the paper's design
    /// keeps this near `max_count`).
    #[must_use]
    pub fn internal_fill(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            let id = i as u32;
            if self.free.contains(&id) {
                continue;
            }
            if self.is_live(id) && self.is_internal(id) {
                total += n.items.len();
                count += 1;
            }
        }
        if count == 0 {
            1.0
        } else {
            total as f64 / (count * self.config.max_count) as f64
        }
    }

    fn is_live(&self, id: u32) -> bool {
        // A node is live if it is reachable from the root; cheap check via
        // parent chain terminating at root.
        let mut cur = id;
        let mut hops = 0;
        while cur != NIL {
            if cur == self.root {
                return true;
            }
            cur = self.node(cur).parent;
            hops += 1;
            if hops > self.nodes.len() {
                return false;
            }
        }
        false
    }

    fn validate_rec(
        &self,
        id: u32,
        count: &mut usize,
        last: &mut Option<A::Entry>,
    ) -> Result<i32, String> {
        if id == NIL {
            return Ok(0);
        }
        let n = self.node(id);
        if n.items.is_empty() {
            return Err(format!("node {id}: empty"));
        }
        if n.items.len() > self.config.max_count {
            return Err(format!("node {id}: overfull"));
        }
        for w in n.items.windows(2) {
            if self.adapter.cmp_entries(&w[0], &w[1]) == Ordering::Greater {
                return Err(format!("node {id}: items out of order"));
            }
        }
        // The descent key cache must re-derive from the bounding items.
        let want_min = self.adapter.entry_tag(&n.items[0]);
        let want_max = self.adapter.entry_tag(&n.items[n.items.len() - 1]);
        if n.min_tag != want_min || n.max_tag != want_max {
            return Err(format!(
                "node {id}: stale key tags ({:#x},{:#x}) != ({want_min:#x},{want_max:#x})",
                n.min_tag, n.max_tag
            ));
        }
        for c in [n.left, n.right] {
            if c != NIL && self.node(c).parent != id {
                return Err(format!("node {c}: bad parent link"));
            }
        }
        let hl = self.validate_rec(n.left, count, last)?;
        for item in &n.items {
            if let Some(prev) = *last {
                if self.adapter.cmp_entries(&prev, item) == Ordering::Greater {
                    return Err(format!("node {id}: global order violated"));
                }
            }
            *last = Some(*item);
            *count += 1;
        }
        let before_right = *last;
        let hr = self.validate_rec(n.right, count, last)?;
        let _ = before_right;
        if (hl - hr).abs() > 1 {
            return Err(format!("node {id}: unbalanced ({hl} vs {hr})"));
        }
        let h = 1 + hl.max(hr);
        if n.height != h {
            return Err(format!("node {id}: height {} != {h}", n.height));
        }
        Ok(h)
    }
}

/// Bulk construction (restart's index-rebuild path; DESIGN.md §16).
impl<A: Adapter> TTree<A> {
    /// Build a T-Tree in one bottom-up pass from entries already sorted by
    /// [`Adapter::cmp_entries`], each paired with its
    /// [`Adapter::entry_tag`].
    ///
    /// Nodes are filled to `config.min_count()` — so every internal node
    /// meets the occupancy invariant at birth and inserts still find slack
    /// up to `max_count` before spilling — and arranged as a
    /// count-balanced tree ([`crate::bulk::balanced_shape`]); no
    /// rebalancing or GLB traffic occurs. Entries with equal keys keep
    /// their input order in the scan sequence (incremental insertion makes
    /// no such promise — GLB spills scramble equal keys).
    ///
    /// The caller is responsible for sortedness and tag correctness
    /// (checked in debug builds); the run-sort kernel over `entry_tag`s
    /// plus a tie-break on the full comparison produces exactly this
    /// input.
    #[must_use]
    pub fn build_from_sorted(
        adapter: A,
        config: TTreeConfig,
        tagged: Vec<(u64, A::Entry)>,
    ) -> Self {
        let fill = config.min_count();
        Self::build_with_fill(adapter, config, tagged, fill)
    }

    fn build_with_fill(
        adapter: A,
        config: TTreeConfig,
        tagged: Vec<(u64, A::Entry)>,
        fill: usize,
    ) -> Self {
        #[cfg(debug_assertions)]
        for w in tagged.windows(2) {
            debug_assert!(
                adapter.cmp_entries(&w[0].1, &w[1].1) != Ordering::Greater,
                "bulk build input not sorted"
            );
        }
        #[cfg(debug_assertions)]
        for (t, e) in &tagged {
            debug_assert_eq!(*t, adapter.entry_tag(e), "bulk build tag mismatch");
        }
        let n = tagged.len();
        let mut tree = TTree::new(adapter, config);
        if n == 0 {
            return tree;
        }
        let fill = fill.clamp(1, config.max_count);
        let shape = crate::bulk::balanced_shape(n, fill);
        let to_id = |link: Option<usize>| link.map_or(NIL, |i| i as u32);
        tree.nodes.reserve(shape.len());
        for s in &shape {
            let slice = &tagged[s.start..s.end];
            let mut items = Vec::with_capacity(config.max_count);
            items.extend(slice.iter().map(|(_, e)| *e));
            tree.stats.data_moves(items.len() as u64);
            tree.nodes.push(Node {
                items,
                min_tag: slice.first().map_or(0, |(t, _)| *t),
                max_tag: slice.last().map_or(0, |(t, _)| *t),
                left: to_id(s.left),
                right: to_id(s.right),
                parent: to_id(s.parent),
                height: s.height,
            });
        }
        // `balanced_shape` pushes each subtree root before its children,
        // so the overall root is arena id 0.
        tree.root = 0;
        tree.len = n;
        tree
    }

    /// Test hook (negative occupancy tests): bulk-build with an arbitrary
    /// per-node fill, bypassing the `min_count` choice above so the
    /// checker's occupancy validator can be shown to catch under-filled
    /// internal nodes.
    #[cfg(feature = "check")]
    #[must_use]
    pub fn raw_build_with_fill(
        adapter: A,
        config: TTreeConfig,
        tagged: Vec<(u64, A::Entry)>,
        fill: usize,
    ) -> Self {
        Self::build_with_fill(adapter, config, tagged, fill)
    }
}

/// An opaque saved cursor position (see [`TTreeCursor::mark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TTreeMark(Option<(u32, usize)>);

/// A rewindable ordered cursor over a [`TTree`].
///
/// Positions are only valid while the tree is not mutated (the borrow
/// enforces this).
pub struct TTreeCursor<'a, A: Adapter> {
    tree: &'a TTree<A>,
    pos: Option<(u32, usize)>,
}

impl<A: Adapter> TTreeCursor<'_, A> {
    /// The entry under the cursor, if any.
    #[must_use]
    pub fn peek(&self) -> Option<A::Entry> {
        self.pos.map(|(node, idx)| self.tree.node(node).items[idx])
    }

    /// Move to the next entry in key order.
    pub fn advance(&mut self) {
        if let Some((node, idx)) = self.pos {
            self.tree
                .stats
                .node_visits(u64::from(idx + 1 >= self.tree.node(node).items.len()));
            self.pos = self.tree.advance(node, idx);
        }
    }

    /// Save the current position.
    #[must_use]
    pub fn mark(&self) -> TTreeMark {
        TTreeMark(self.pos)
    }

    /// Restore a saved position.
    pub fn rewind(&mut self, mark: TTreeMark) {
        self.pos = mark.0;
    }
}

/// Ordered iterator over a [`TTree`].
pub struct TTreeIter<'a, A: Adapter> {
    tree: &'a TTree<A>,
    pos: Option<(u32, usize)>,
}

impl<'a, A: Adapter> Iterator for TTreeIter<'a, A> {
    type Item = A::Entry;

    fn next(&mut self) -> Option<A::Entry> {
        let (node, idx) = self.pos?;
        let e = self.tree.node(node).items[idx];
        self.pos = self.tree.advance(node, idx);
        Some(e)
    }
}

impl<A: Adapter> OrderedIndex<A> for TTree<A> {
    fn insert(&mut self, entry: A::Entry) {
        self.insert_inner(entry);
    }

    fn insert_unique(&mut self, entry: A::Entry) -> Result<(), IndexError> {
        if let Probe::Bounds(id) = self.probe_entry(&entry) {
            let pos = self.node_lower_bound_by(id, |e| self.adapter.cmp_entries(e, &entry));
            if pos < self.node(id).items.len() {
                self.stats.comparisons(1);
                if self.adapter.cmp_entries(&self.node(id).items[pos], &entry) == Ordering::Equal {
                    return Err(IndexError::DuplicateKey);
                }
            }
        }
        self.insert_inner(entry);
        Ok(())
    }

    fn delete(&mut self, key: &A::Key) -> Option<A::Entry> {
        let (node, pos) = self.lower_bound_key(key)?;
        self.stats.comparisons(1);
        if self.adapter.cmp_entry_key(&self.node(node).items[pos], key) != Ordering::Equal {
            return None;
        }
        Some(self.remove_at(node, pos))
    }

    fn delete_entry(&mut self, entry: &A::Entry) -> bool {
        let mut cur = self.lower_bound_by(|e| self.adapter.cmp_entries(e, entry));
        while let Some((node, pos)) = cur {
            let e = self.node(node).items[pos];
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(&e, entry) != Ordering::Equal {
                return false;
            }
            if e == *entry {
                self.remove_at(node, pos);
                return true;
            }
            cur = self.advance(node, pos);
        }
        false
    }

    fn search(&self, key: &A::Key) -> Option<A::Entry> {
        // The paper's search: descend on min/max (via the cached key
        // tags when they decide), binary search the bounding node.
        let tag = self.adapter.key_tag(key);
        let mut cur = self.root;
        while cur != NIL {
            self.stats.node_visits(1);
            let n = self.node(cur);
            self.stats.comparisons(1);
            let min_above = match Self::tag_cmp(n.min_tag, tag) {
                Some(o) => o == Ordering::Greater,
                None => self.adapter.cmp_entry_key(&n.items[0], key) == Ordering::Greater,
            };
            if min_above {
                cur = n.left;
                continue;
            }
            self.stats.comparisons(1);
            let max_below = match Self::tag_cmp(n.max_tag, tag) {
                Some(o) => o == Ordering::Less,
                None => {
                    self.adapter.cmp_entry_key(&n.items[n.items.len() - 1], key) == Ordering::Less
                }
            };
            if max_below {
                cur = n.right;
                continue;
            }
            let pos = self.node_lower_bound_by(cur, |e| self.adapter.cmp_entry_key(e, key));
            if pos < n.items.len() {
                self.stats.comparisons(1);
                if self.adapter.cmp_entry_key(&n.items[pos], key) == Ordering::Equal {
                    return Some(n.items[pos]);
                }
            }
            return None;
        }
        None
    }

    fn search_all(&self, key: &A::Key, out: &mut Vec<A::Entry>) {
        // §3.3.4 Test 6 describes exactly this: "the search stops at any
        // tuple with that value, and the tree is then scanned … (since the
        // list of tuples for a given value is logically contiguous in the
        // tree)".
        let mut cur = self.lower_bound_key(key);
        while let Some((node, pos)) = cur {
            let e = self.node(node).items[pos];
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&e, key) != Ordering::Equal {
                return;
            }
            out.push(e);
            cur = self.advance(node, pos);
        }
    }

    fn range(&self, lo: Bound<&A::Key>, hi: Bound<&A::Key>, out: &mut Vec<A::Entry>) {
        let mut cur = match lo {
            Bound::Unbounded => {
                if self.root == NIL {
                    None
                } else {
                    Some((self.leftmost(self.root), 0))
                }
            }
            Bound::Included(k) => self.lower_bound_key(k),
            Bound::Excluded(k) => {
                let mut c = self.lower_bound_key(k);
                while let Some((node, pos)) = c {
                    self.stats.comparisons(1);
                    if self.adapter.cmp_entry_key(&self.node(node).items[pos], k)
                        == Ordering::Greater
                    {
                        break;
                    }
                    c = self.advance(node, pos);
                }
                c
            }
        };
        while let Some((node, pos)) = cur {
            let e = self.node(node).items[pos];
            let ord = match hi {
                Bound::Unbounded => Ordering::Less,
                Bound::Included(k) | Bound::Excluded(k) => {
                    self.stats.comparisons(1);
                    self.adapter.cmp_entry_key(&e, k)
                }
            };
            if !bound_ok_hi(ord, &hi) {
                return;
            }
            out.push(e);
            cur = self.advance(node, pos);
        }
    }

    fn scan(&self, visit: &mut dyn FnMut(&A::Entry)) {
        for e in self.iter() {
            visit(&e);
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn storage_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.nodes.len() * std::mem::size_of::<Node<A::Entry>>()
            + self.free.len() * std::mem::size_of::<u32>();
        for n in &self.nodes {
            total += n.items.capacity() * std::mem::size_of::<A::Entry>();
        }
        total
    }

    fn stats(&self) -> Snapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn validate(&self) -> Result<(), String> {
        if self.root == NIL {
            if self.len != 0 {
                return Err(format!("empty tree but len = {}", self.len));
            }
            return Ok(());
        }
        if self.node(self.root).parent != NIL {
            return Err("root has a parent".into());
        }
        let mut count = 0usize;
        let mut last = None;
        self.validate_rec(self.root, &mut count, &mut last)?;
        if count != self.len {
            return Err(format!("len {} but traversal found {count}", self.len));
        }
        Ok(())
    }
}

/// Raw structural access for the `mmdb-check` verification layer.
#[cfg(feature = "check")]
impl<A: Adapter> TTree<A> {
    /// Arena id of the root node, if the tree is non-empty.
    #[must_use]
    pub fn raw_root(&self) -> Option<u32> {
        (self.root != NIL).then_some(self.root)
    }

    /// Owned views of every node reachable from the root.
    #[must_use]
    pub fn raw_nodes(&self) -> Vec<crate::raw::TreeNodeView<A::Entry>> {
        let mut out = Vec::new();
        let mut stack = match self.raw_root() {
            Some(r) => vec![r],
            None => Vec::new(),
        };
        while let Some(id) = stack.pop() {
            let n = self.node(id);
            out.push(crate::raw::TreeNodeView {
                id,
                entries: n.items.clone(),
                left: (n.left != NIL).then_some(n.left),
                right: (n.right != NIL).then_some(n.right),
                parent: (n.parent != NIL).then_some(n.parent),
                height: n.height,
            });
            if n.left != NIL {
                stack.push(n.left);
            }
            if n.right != NIL {
                stack.push(n.right);
            }
            if out.len() > self.nodes.len() {
                break; // cycle in child pointers; the checker reports it
            }
        }
        out
    }

    /// The adapter, for key comparisons during checking.
    #[must_use]
    pub fn raw_adapter(&self) -> &A {
        &self.adapter
    }

    /// Corruption hook (negative tests only): mutable access to the item
    /// vector of node `id`.
    pub fn raw_items_mut(&mut self, id: u32) -> &mut Vec<A::Entry> {
        &mut self.node_mut(id).items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit::{self, DupAdapter};

    fn nat(node_size: usize) -> TTree<NaturalAdapter<u64>> {
        TTree::new(
            NaturalAdapter::new(),
            TTreeConfig::with_node_size(node_size),
        )
    }

    #[test]
    fn empty_tree() {
        let mut t = nat(8);
        assert!(t.is_empty());
        assert_eq!(t.search(&3), None);
        assert_eq!(t.delete(&3), None);
        assert_eq!(t.iter().count(), 0);
        t.validate().unwrap();
    }

    #[test]
    fn single_node_fills_before_growing() {
        let mut t = nat(10);
        for k in 0..10u64 {
            t.insert(k);
        }
        assert_eq!(t.nodes.len(), 1, "should still be a single node");
        t.insert(10);
        assert!(t.nodes.len() > 1, "overflow must grow the tree");
        t.validate().unwrap();
    }

    #[test]
    fn sequential_insert_balanced() {
        for ns in [1, 2, 4, 16, 60] {
            let mut t = nat(ns);
            for k in 0..3000u64 {
                t.insert(k);
            }
            t.validate().unwrap_or_else(|e| panic!("ns {ns}: {e}"));
            for k in (0..3000u64).step_by(17) {
                assert_eq!(t.search(&k), Some(k));
            }
            assert_eq!(t.search(&3000), None);
        }
    }

    #[test]
    fn reverse_and_alternating_inserts() {
        let mut t = nat(6);
        for k in (0..1000u64).rev() {
            t.insert(k);
        }
        t.validate().unwrap();
        let mut t2 = nat(6);
        for i in 0..1000u64 {
            let k = if i % 2 == 0 { i } else { 2000 - i };
            t2.insert(k);
        }
        t2.validate().unwrap();
    }

    #[test]
    fn bounding_node_insert_spills_minimum() {
        let mut t = nat(4);
        // Fill: [10, 20, 30, 40]; then split pressure via bounded inserts.
        for k in [10u64, 20, 30, 40] {
            t.insert(k);
        }
        t.insert(25); // bounds: spills 10 to a new left leaf
        t.validate().unwrap();
        let all: Vec<u64> = t.iter().collect();
        assert_eq!(all, vec![10, 20, 25, 30, 40]);
        // The minimum must have moved to a left leaf.
        let root = t.root;
        let left = t.node(root).left;
        assert_ne!(left, NIL);
        assert_eq!(t.node(left).items, vec![10]);
    }

    #[test]
    fn delete_underflow_borrows_glb() {
        let mut t = nat(4);
        for k in 0..40u64 {
            t.insert(k);
        }
        t.validate().unwrap();
        // Delete from internal nodes until structure must reshape.
        for k in 0..30u64 {
            assert_eq!(t.delete(&k), Some(k), "k={k}");
            t.validate()
                .unwrap_or_else(|e| panic!("after delete {k}: {e}"));
        }
        assert_eq!(t.len(), 10);
        let remaining: Vec<u64> = t.iter().collect();
        assert_eq!(remaining, (30..40).collect::<Vec<u64>>());
    }

    #[test]
    fn delete_to_empty_and_reuse_arena() {
        let mut t = nat(3);
        for round in 0..3 {
            for k in 0..200u64 {
                t.insert(k);
            }
            for k in 0..200u64 {
                assert_eq!(t.delete(&k), Some(k), "round {round} k {k}");
            }
            assert!(t.is_empty());
            t.validate().unwrap();
        }
        assert!(t.nodes.len() < 200, "arena should be reused");
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut t = nat(12);
        let entries = testkit::shuffled_unique_entries(2048, 21);
        for e in &entries {
            t.insert(*e);
        }
        let got: Vec<u64> = t.iter().collect();
        let mut expect = entries.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn iter_from_starts_at_lower_bound() {
        let mut t = nat(5);
        for k in (0..100u64).step_by(10) {
            t.insert(k);
        }
        let got: Vec<u64> = t.iter_from(&35).collect();
        assert_eq!(got, vec![40, 50, 60, 70, 80, 90]);
        let got: Vec<u64> = t.iter_from(&40).collect();
        assert_eq!(got[0], 40);
    }

    #[test]
    fn duplicates_contiguous_scan() {
        let mut t = TTree::new(DupAdapter, TTreeConfig::with_node_size(4));
        for low in 0..30u64 {
            t.insert((5 << 16) | low);
        }
        for k in [1u64, 9] {
            t.insert(k << 16);
        }
        t.validate().unwrap();
        let mut out = Vec::new();
        t.search_all(&5, &mut out);
        assert_eq!(out.len(), 30, "all duplicates found via contiguous scan");
        // delete_entry must find a specific duplicate anywhere in the run.
        assert!(t.delete_entry(&((5 << 16) | 17)));
        assert!(!t.delete_entry(&((5 << 16) | 17)));
        out.clear();
        t.search_all(&5, &mut out);
        assert_eq!(out.len(), 29);
        t.validate().unwrap();
    }

    #[test]
    fn range_queries() {
        let mut t = nat(7);
        for k in 0..500u64 {
            t.insert(k);
        }
        let mut out = Vec::new();
        t.range(Bound::Included(&100), Bound::Excluded(&110), &mut out);
        assert_eq!(out, (100..110).collect::<Vec<u64>>());
        out.clear();
        t.range(Bound::Excluded(&100), Bound::Included(&103), &mut out);
        assert_eq!(out, vec![101, 102, 103]);
        out.clear();
        t.range(Bound::Unbounded, Bound::Excluded(&5), &mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        out.clear();
        t.range(Bound::Included(&495), Bound::Unbounded, &mut out);
        assert_eq!(out, vec![495, 496, 497, 498, 499]);
    }

    #[test]
    fn insert_unique_rejects() {
        let mut t = nat(8);
        for k in 0..100u64 {
            t.insert_unique(k).unwrap();
        }
        for k in 0..100u64 {
            assert_eq!(t.insert_unique(k), Err(IndexError::DuplicateKey));
        }
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn differential_vs_model_various_node_sizes() {
        for ns in [1usize, 2, 5, 16] {
            let mut t = TTree::new(DupAdapter, TTreeConfig::with_node_size(ns));
            testkit::ordered_differential(DupAdapter, &mut t, 0x77EE + ns as u64, 5000, 250);
        }
    }

    #[test]
    fn differential_with_zero_slack() {
        let mut t = TTree::new(
            DupAdapter,
            TTreeConfig {
                max_count: 8,
                slack: 0,
            },
        );
        testkit::ordered_differential(DupAdapter, &mut t, 0x5ACC, 4000, 200);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn search_cost_between_avl_and_btree() {
        // Graph 1's qualitative claim: T-Tree search ≈ AVL search + one
        // final binary search.
        let n = 30_000usize;
        let entries: Vec<u64> = testkit::shuffled_unique_entries(n, 4)
            .iter()
            .map(|e| e >> 16)
            .collect();
        let mut t = nat(30);
        for e in &entries {
            t.insert(*e);
        }
        t.reset_stats();
        for k in (0..n as u64).step_by(100) {
            assert!(t.search(&k).is_some());
        }
        let per = t.stats().comparisons as f64 / 300.0;
        // Depth ≈ log2(30000/30) ≈ 10, ×2 compares + ~log2(30)≈5 final.
        assert!(per < 40.0, "per-search comparisons {per}");
    }

    #[cfg(feature = "stats")]
    #[test]
    fn slack_reduces_rotations() {
        // DESIGN.md ablation #1, paper §3.2.1: "this little bit of extra
        // room reduces … data passed down to leaves" and rotation count.
        let run = |slack: usize| -> u64 {
            let mut t = TTree::new(
                NaturalAdapter::<u64>::new(),
                TTreeConfig {
                    max_count: 10,
                    slack,
                },
            );
            let mut rng = testkit::TestRng::new(99);
            for _ in 0..4000 {
                t.insert(rng.below(10_000));
            }
            // Mixed phase.
            for _ in 0..8000 {
                let k = rng.below(10_000);
                if rng.below(2) == 0 {
                    t.insert(k);
                } else {
                    t.delete(&k);
                }
            }
            t.stats().rotations
        };
        let r0 = run(0);
        let r2 = run(2);
        assert!(
            r2 <= r0,
            "slack-2 should not rotate more than slack-0 ({r2} vs {r0})"
        );
    }

    #[test]
    fn internal_nodes_stay_well_filled() {
        let mut t = nat(20);
        let mut rng = testkit::TestRng::new(123);
        for _ in 0..20_000 {
            t.insert(rng.below(1 << 40));
        }
        for _ in 0..10_000 {
            let k = rng.below(1 << 40);
            let _ = t.delete(&k);
            t.insert(rng.below(1 << 40));
        }
        t.validate().unwrap();
        let fill = t.internal_fill();
        assert!(fill > 0.7, "internal fill should stay high, got {fill}");
    }

    #[test]
    fn storage_factor_close_to_b_tree() {
        // Paper: "Linear Hashing, B Trees, Extendible Hashing and T Trees
        // all had nearly equal storage factors of 1.5 for medium to large
        // size nodes."
        let mut t = TTree::new(DupAdapter, TTreeConfig::with_node_size(30));
        let n = 10_000usize;
        for e in testkit::shuffled_unique_entries(n, 8) {
            t.insert(e);
        }
        let payload = n * std::mem::size_of::<u64>();
        let factor = t.storage_bytes() as f64 / payload as f64;
        assert!(factor < 2.5, "T-Tree storage factor {factor}");
    }
}

#[cfg(test)]
mod cursor_tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit;

    #[test]
    fn cursor_walks_and_rewinds() {
        let mut t = TTree::new(NaturalAdapter::<u64>::new(), TTreeConfig::with_node_size(3));
        for k in 0..50u64 {
            t.insert(k);
        }
        let mut c = t.cursor();
        for k in 0..10u64 {
            assert_eq!(c.peek(), Some(k));
            c.advance();
        }
        let mark = c.mark();
        for k in 10..20u64 {
            assert_eq!(c.peek(), Some(k));
            c.advance();
        }
        c.rewind(mark);
        assert_eq!(c.peek(), Some(10));
        // Walk off the end.
        let mut c = t.cursor();
        for _ in 0..50 {
            c.advance();
        }
        assert_eq!(c.peek(), None);
        c.advance(); // no panic past the end
        assert_eq!(c.peek(), None);
    }

    #[test]
    fn cursor_on_empty_tree() {
        let t: TTree<NaturalAdapter<u64>> = TTree::with_default_config(NaturalAdapter::new());
        let mut c = t.cursor();
        assert_eq!(c.peek(), None);
        c.advance();
        assert_eq!(c.peek(), None);
        let m = c.mark();
        c.rewind(m);
        assert_eq!(c.peek(), None);
    }

    /// [`DupAdapter`] with real key tags (the key itself — trivially
    /// monotone), so bulk builds exercise the tag cache.
    #[derive(Debug, Default, Clone, Copy)]
    struct TagDupAdapter;

    impl Adapter for TagDupAdapter {
        type Entry = u64;
        type Key = u64;

        fn cmp_entries(&self, a: &u64, b: &u64) -> std::cmp::Ordering {
            testkit::dup_key(*a).cmp(&testkit::dup_key(*b))
        }

        fn cmp_entry_key(&self, e: &u64, key: &u64) -> std::cmp::Ordering {
            testkit::dup_key(*e).cmp(key)
        }

        fn entry_tag(&self, e: &u64) -> u64 {
            testkit::dup_key(*e)
        }

        fn key_tag(&self, key: &u64) -> u64 {
            *key
        }
    }

    fn bulk_vs_incremental(entries: &[u64], node_size: usize) {
        let tagged: Vec<(u64, u64)> = entries
            .iter()
            .map(|&e| (TagDupAdapter.entry_tag(&e), e))
            .collect();
        let bulk = TTree::build_from_sorted(
            TagDupAdapter,
            TTreeConfig::with_node_size(node_size),
            tagged,
        );
        bulk.validate()
            .unwrap_or_else(|e| panic!("node_size {node_size}: {e}"));
        assert_eq!(bulk.len(), entries.len());
        let mut incr = TTree::new(TagDupAdapter, TTreeConfig::with_node_size(node_size));
        for &e in entries {
            incr.insert(e);
        }
        // Bulk scan preserves the sorted input exactly (including the
        // order of equal keys, which incremental GLB spills scramble);
        // contents match incremental insertion as a multiset.
        let b: Vec<u64> = bulk.iter().collect();
        assert_eq!(b, entries, "node_size {node_size}: input order");
        let mut bs = b;
        bs.sort_unstable();
        let mut is: Vec<u64> = incr.iter().collect();
        is.sort_unstable();
        assert_eq!(bs, is, "node_size {node_size}: contents");
    }

    #[test]
    fn bulk_build_matches_incremental_insert() {
        for node_size in [1, 2, 3, 5, 30] {
            for n in [0usize, 1, 2, 27, 28, 29, 300] {
                let entries: Vec<u64> = (0..n as u64).map(|k| k << 16).collect();
                bulk_vs_incremental(&entries, node_size);
            }
        }
    }

    #[test]
    fn bulk_build_duplicate_heavy_keeps_input_order() {
        // 10 distinct keys × 40 copies, suffixes distinguishing copies;
        // sorted by key with ascending suffix within each key.
        let entries: Vec<u64> = (0..10u64)
            .flat_map(|k| (0..40u64).map(move |s| (k << 16) | s))
            .collect();
        bulk_vs_incremental(&entries, 7);
        bulk_vs_incremental(&entries, 30);
    }

    #[test]
    fn bulk_build_then_mutate() {
        let entries: Vec<u64> = (0..500u64).map(|k| k << 16).collect();
        let tagged: Vec<(u64, u64)> = entries
            .iter()
            .map(|&e| (TagDupAdapter.entry_tag(&e), e))
            .collect();
        let mut t = TTree::build_from_sorted(TagDupAdapter, TTreeConfig::with_node_size(8), tagged);
        // A bulk-built tree must keep working as a live index: interleave
        // inserts and deletes, then validate.
        for k in 0..500u64 {
            if k % 3 == 0 {
                assert!(t.delete(&k).is_some(), "delete {k}");
            }
        }
        for k in 500..700u64 {
            t.insert(k << 16);
        }
        t.validate().expect("after mutation");
        let got: Vec<u64> = t.iter().map(testkit::dup_key).collect();
        let want: Vec<u64> = (0..500u64).filter(|k| k % 3 != 0).chain(500..700).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_build_internal_occupancy_at_min_count() {
        let config = TTreeConfig::with_node_size(30);
        let entries: Vec<u64> = (0..10_000u64).map(|k| k << 16).collect();
        let tagged: Vec<(u64, u64)> = entries
            .iter()
            .map(|&e| (TagDupAdapter.entry_tag(&e), e))
            .collect();
        let t = TTree::build_from_sorted(TagDupAdapter, config, tagged);
        t.validate().expect("valid");
        // Every chunk is min_count except possibly the last, so internal
        // fill is min_count / max_count exactly.
        let want = config.min_count() as f64 / config.max_count as f64;
        assert!(
            (t.internal_fill() - want).abs() < 1e-9,
            "{}",
            t.internal_fill()
        );
    }
}
