//! Chained Bucket Hashing \[AHU74, Knu73\] (§3.2).
//!
//! A fixed-size table of bucket chains. The paper used it "as the temporary
//! index structure for unordered data, as it has excellent performance for
//! static data" — it is the table the **Hash Join** builds on its inner
//! relation, and the structure originally intended for static indices in
//! the MM-DBMS.
//!
//! The table size is chosen once, at construction, and never changes:
//! search and update costs are excellent while the population matches the
//! table, and degrade (chains lengthen) if the population grows far past
//! it — the reason the paper classifies it "only a static structure".
//! Storage factor measured in the paper: ≈ 2.3 (one chain pointer per item
//! plus partly unused table slots).

use crate::adapter::HashAdapter;
use crate::stats::{Counters, Snapshot};
use crate::traits::{IndexError, UnorderedIndex};
use std::cmp::Ordering;

const NIL: u32 = u32::MAX;

struct ChainNode<E> {
    entry: E,
    next: u32,
}

/// A static chained-bucket hash table.
pub struct ChainedBucketHash<A: HashAdapter> {
    adapter: A,
    /// Bucket heads into the node arena.
    table: Vec<u32>,
    nodes: Vec<ChainNode<A::Entry>>,
    free: Vec<u32>,
    mask: u64,
    len: usize,
    stats: Counters,
}

impl<A: HashAdapter> ChainedBucketHash<A> {
    /// Create a table sized for an expected population of `expected`
    /// entries (table size = next power of two ≥ `expected`, so chains
    /// average ≤ 1 when the estimate is right).
    pub fn with_capacity(adapter: A, expected: usize) -> Self {
        let size = expected.next_power_of_two().max(8);
        ChainedBucketHash {
            adapter,
            table: vec![NIL; size],
            nodes: Vec::with_capacity(expected),
            free: Vec::new(),
            mask: (size - 1) as u64,
            len: 0,
            stats: Counters::default(),
        }
    }

    /// Number of buckets in the (fixed) table.
    #[must_use]
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    fn bucket_of_key(&self, key: &A::Key) -> usize {
        self.stats.hash_calls(1);
        (self.adapter.hash_key(key) & self.mask) as usize
    }

    fn bucket_of_entry(&self, e: &A::Entry) -> usize {
        self.stats.hash_calls(1);
        (self.adapter.hash_entry(e) & self.mask) as usize
    }

    fn alloc(&mut self, entry: A::Entry, next: u32) -> u32 {
        let n = ChainNode { entry, next };
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = n;
            id
        } else {
            self.nodes.push(n);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Average chain length over non-empty buckets (diagnostic).
    #[must_use]
    pub fn average_chain_length(&self) -> f64 {
        let used = self.table.iter().filter(|h| **h != NIL).count();
        if used == 0 {
            0.0
        } else {
            self.len as f64 / used as f64
        }
    }
}

impl<A: HashAdapter> UnorderedIndex<A> for ChainedBucketHash<A> {
    fn insert(&mut self, entry: A::Entry) {
        let b = self.bucket_of_entry(&entry);
        let head = self.table[b];
        let id = self.alloc(entry, head);
        self.table[b] = id;
        self.stats.data_moves(1);
        self.len += 1;
    }

    fn insert_unique(&mut self, entry: A::Entry) -> Result<(), IndexError> {
        let b = self.bucket_of_entry(&entry);
        let mut cur = self.table[b];
        while cur != NIL {
            self.stats.node_visits(1);
            self.stats.comparisons(1);
            if self
                .adapter
                .cmp_entries(&self.nodes[cur as usize].entry, &entry)
                == Ordering::Equal
            {
                return Err(IndexError::DuplicateKey);
            }
            cur = self.nodes[cur as usize].next;
        }
        let head = self.table[b];
        let id = self.alloc(entry, head);
        self.table[b] = id;
        self.stats.data_moves(1);
        self.len += 1;
        Ok(())
    }

    fn delete(&mut self, key: &A::Key) -> Option<A::Entry> {
        let b = self.bucket_of_key(key);
        let mut prev = NIL;
        let mut cur = self.table[b];
        while cur != NIL {
            self.stats.node_visits(1);
            self.stats.comparisons(1);
            if self
                .adapter
                .cmp_entry_key(&self.nodes[cur as usize].entry, key)
                == Ordering::Equal
            {
                let next = self.nodes[cur as usize].next;
                if prev == NIL {
                    self.table[b] = next;
                } else {
                    self.nodes[prev as usize].next = next;
                }
                let e = self.nodes[cur as usize].entry;
                self.free.push(cur);
                self.len -= 1;
                return Some(e);
            }
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        None
    }

    fn delete_entry(&mut self, entry: &A::Entry) -> bool {
        let b = self.bucket_of_entry(entry);
        let mut prev = NIL;
        let mut cur = self.table[b];
        while cur != NIL {
            self.stats.node_visits(1);
            self.stats.comparisons(1);
            if self.nodes[cur as usize].entry == *entry {
                let next = self.nodes[cur as usize].next;
                if prev == NIL {
                    self.table[b] = next;
                } else {
                    self.nodes[prev as usize].next = next;
                }
                self.free.push(cur);
                self.len -= 1;
                return true;
            }
            prev = cur;
            cur = self.nodes[cur as usize].next;
        }
        false
    }

    fn search(&self, key: &A::Key) -> Option<A::Entry> {
        let b = self.bucket_of_key(key);
        let mut cur = self.table[b];
        while cur != NIL {
            self.stats.node_visits(1);
            self.stats.comparisons(1);
            let n = &self.nodes[cur as usize];
            if self.adapter.cmp_entry_key(&n.entry, key) == Ordering::Equal {
                return Some(n.entry);
            }
            cur = n.next;
        }
        None
    }

    fn search_all(&self, key: &A::Key, out: &mut Vec<A::Entry>) {
        let b = self.bucket_of_key(key);
        let mut cur = self.table[b];
        while cur != NIL {
            self.stats.node_visits(1);
            self.stats.comparisons(1);
            let n = &self.nodes[cur as usize];
            if self.adapter.cmp_entry_key(&n.entry, key) == Ordering::Equal {
                out.push(n.entry);
            }
            cur = n.next;
        }
    }

    fn scan(&self, visit: &mut dyn FnMut(&A::Entry)) {
        for &head in &self.table {
            let mut cur = head;
            while cur != NIL {
                let n = &self.nodes[cur as usize];
                visit(&n.entry);
                cur = n.next;
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn storage_bytes(&self) -> usize {
        // The table is real allocated structure; chain nodes are charged
        // per live node (the paper's C code malloc'd nodes individually).
        std::mem::size_of::<Self>()
            + self.table.capacity() * std::mem::size_of::<u32>()
            + self.nodes.len() * std::mem::size_of::<ChainNode<A::Entry>>()
            + self.free.len() * std::mem::size_of::<u32>()
    }

    fn stats(&self) -> Snapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (b, &head) in self.table.iter().enumerate() {
            let mut cur = head;
            let mut hops = 0usize;
            while cur != NIL {
                let n = &self.nodes[cur as usize];
                let expect = (self.adapter.hash_entry(&n.entry) & self.mask) as usize;
                if expect != b {
                    return Err(format!("entry in bucket {b} hashes to {expect}"));
                }
                count += 1;
                hops += 1;
                if hops > self.nodes.len() {
                    return Err(format!("cycle in bucket {b}"));
                }
                cur = n.next;
            }
        }
        if count != self.len {
            return Err(format!("len {} but chains hold {count}", self.len));
        }
        Ok(())
    }
}

/// Raw structural access for the `mmdb-check` verification layer.
#[cfg(feature = "check")]
impl<A: HashAdapter> ChainedBucketHash<A> {
    /// Every bucket's chain, in chain order (walks are bounded by the
    /// arena size, so a cyclic chain is reported as `truncated`).
    #[must_use]
    pub fn raw_buckets(&self) -> Vec<crate::raw::BucketView<A::Entry>> {
        let bound = self.nodes.len();
        self.table
            .iter()
            .enumerate()
            .map(|(bucket, head)| {
                let mut entries = Vec::new();
                let mut cur = *head;
                let mut truncated = false;
                while cur != NIL {
                    if entries.len() >= bound {
                        truncated = true;
                        break;
                    }
                    let n = &self.nodes[cur as usize];
                    entries.push(n.entry);
                    cur = n.next;
                }
                crate::raw::BucketView {
                    bucket,
                    entries,
                    truncated,
                }
            })
            .collect()
    }

    /// The bucket an entry hashes home to.
    #[must_use]
    pub fn raw_home_bucket(&self, e: &A::Entry) -> usize {
        self.bucket_of_entry(e)
    }

    /// The adapter, for key comparisons during checking.
    #[must_use]
    pub fn raw_adapter(&self) -> &A {
        &self.adapter
    }

    /// Corruption hook (negative tests only): swap two bucket heads, so
    /// every entry in both chains lands in the wrong bucket.
    pub fn raw_swap_heads(&mut self, a: usize, b: usize) {
        self.table.swap(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit::{self, DupAdapter};

    fn nat(cap: usize) -> ChainedBucketHash<NaturalAdapter<u64>> {
        ChainedBucketHash::with_capacity(NaturalAdapter::new(), cap)
    }

    #[test]
    fn empty() {
        let mut h = nat(16);
        assert_eq!(h.search(&1), None);
        assert_eq!(h.delete(&1), None);
        assert!(h.is_empty());
        h.validate().unwrap();
    }

    #[test]
    fn insert_search_delete() {
        let mut h = nat(64);
        for k in 0..100u64 {
            h.insert(k);
        }
        h.validate().unwrap();
        for k in 0..100u64 {
            assert_eq!(h.search(&k), Some(k));
        }
        assert_eq!(h.search(&100), None);
        for k in (0..100u64).step_by(2) {
            assert_eq!(h.delete(&k), Some(k));
        }
        assert_eq!(h.len(), 50);
        h.validate().unwrap();
    }

    #[test]
    fn survives_overfill() {
        // 10× the expected population: chains lengthen but all operations
        // stay correct.
        let mut h = nat(16);
        for k in 0..1000u64 {
            h.insert(k);
        }
        h.validate().unwrap();
        for k in (0..1000u64).step_by(13) {
            assert_eq!(h.search(&k), Some(k));
        }
        assert!(h.average_chain_length() > 10.0);
    }

    #[test]
    fn duplicates() {
        let mut h = ChainedBucketHash::with_capacity(DupAdapter, 32);
        for low in 0..8u64 {
            h.insert((3 << 16) | low);
        }
        let mut out = Vec::new();
        h.search_all(&3, &mut out);
        assert_eq!(out.len(), 8);
        assert!(h.delete_entry(&((3 << 16) | 5)));
        assert!(!h.delete_entry(&((3 << 16) | 5)));
        out.clear();
        h.search_all(&3, &mut out);
        assert_eq!(out.len(), 7);
        h.validate().unwrap();
    }

    #[test]
    fn insert_unique_detects_duplicate_keys() {
        let mut h = ChainedBucketHash::with_capacity(DupAdapter, 32);
        h.insert_unique((3 << 16) | 1).unwrap();
        assert_eq!(
            h.insert_unique((3 << 16) | 2),
            Err(IndexError::DuplicateKey)
        );
        h.insert_unique(4 << 16).unwrap();
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn differential_vs_model() {
        let mut h = ChainedBucketHash::with_capacity(DupAdapter, 256);
        testkit::unordered_differential(DupAdapter, &mut h, 0xC8A1, 5000, 300);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn search_cost_is_constant() {
        let mut h = nat(40_000);
        for e in testkit::shuffled_unique_entries(30_000, 6) {
            h.insert(e >> 16);
        }
        h.reset_stats();
        for k in (0..30_000u64).step_by(100) {
            assert!(h.search(&k).is_some());
        }
        let s = h.stats();
        let per = s.comparisons as f64 / 300.0;
        assert!(
            per < 3.0,
            "chained-bucket search should be ~O(1), got {per}"
        );
        assert_eq!(s.hash_calls, 300);
    }

    #[test]
    fn storage_factor_near_paper() {
        // Paper: storage factor ≈ 2.3 over the array baseline.
        let mut h = ChainedBucketHash::with_capacity(DupAdapter, 30_000);
        for e in testkit::shuffled_unique_entries(30_000, 1) {
            h.insert(e);
        }
        let payload = 30_000 * std::mem::size_of::<u64>();
        let factor = h.storage_bytes() as f64 / payload as f64;
        assert!(factor > 1.5 && factor < 3.5, "CBH storage factor {factor}");
    }

    #[test]
    fn scan_visits_everything() {
        let mut h = nat(128);
        for k in 0..500u64 {
            h.insert(k);
        }
        let mut seen = Vec::new();
        h.scan(&mut |e| seen.push(*e));
        seen.sort_unstable();
        assert_eq!(seen, (0..500).collect::<Vec<u64>>());
    }
}
