//! Main-memory index structures from Lehman & Carey, *Query Processing in
//! Main Memory Database Management Systems* (SIGMOD 1986).
//!
//! This crate implements every index structure evaluated in §3.2 of the
//! paper, in the same "main memory" style the paper prescribes: an index
//! stores fixed-size **entries** (in the MM-DBMS these are tuple pointers,
//! in unit tests they are plain integers) and compares them through an
//! [`Adapter`], which in the DBMS dereferences the pointer to reach the key
//! inside the tuple.
//!
//! # Structures
//!
//! Order-preserving:
//! * [`TTree`] — the paper's new structure: a balanced binary tree whose
//!   nodes hold many sorted elements (§3.2.1).
//! * [`AvlTree`] — classic AVL tree, one element per node.
//! * [`BTree`] — the *original* B-Tree (data in interior nodes), not B+.
//! * [`ArrayIndex`] — a sorted array with pure binary search.
//!
//! Hash-based:
//! * [`ChainedBucketHash`] — static table with per-bucket chains \[Knu73\].
//! * [`ExtendibleHash`] — directory-doubling dynamic hashing \[FNP79\].
//! * [`LinearHash`] — Litwin's linear hashing driven by storage-utilisation
//!   bounds \[Lit80\].
//! * [`ModifiedLinearHash`] — the paper's main-memory variant: single-item
//!   overflow nodes and directory growth controlled by average chain
//!   length \[LeC85\].
//!
//! # Instrumentation
//!
//! The paper validated each implementation by counting comparisons, data
//! movement, and hash-function calls, then compiled the counters out for
//! the timed runs. The [`stats`] module reproduces that methodology: with
//! the `stats` cargo feature (default) every structure maintains
//! [`stats::Counters`]; without it the counters are zero-sized no-ops.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adapter;
pub mod array;
pub mod avl;
pub mod btree;
pub mod bulk;
pub mod chained;
pub mod extendible;
pub mod linear;
pub mod modlinear;
#[cfg(feature = "check")]
pub mod raw;
pub mod sort;
pub mod stats;
pub mod traits;
pub mod ttree;

pub use adapter::{Adapter, HashAdapter, NaturalAdapter};
pub use array::ArrayIndex;
pub use avl::AvlTree;
pub use btree::BTree;
pub use chained::ChainedBucketHash;
pub use extendible::ExtendibleHash;
pub use linear::LinearHash;
pub use modlinear::ModifiedLinearHash;
pub use traits::{IndexError, OrderedIndex, UnorderedIndex};
pub use ttree::{TTree, TTreeConfig, TTreeCursor, TTreeMark};

#[cfg(test)]
pub(crate) mod testkit;

/// Pop the last element of a vector that a structural invariant guarantees
/// to be non-empty. Centralised so library code carries no `unwrap`/`expect`
/// (the workspace lint gate); the panic message names the violated
/// invariant, which is what `mmdb-check` diagnostics key on.
pub(crate) fn pop_invariant<T>(v: &mut Vec<T>, invariant: &str) -> T {
    match v.pop() {
        Some(t) => t,
        None => panic!("index structural invariant violated: {invariant}"),
    }
}
