//! The sorted-array index \[AHK85\] (§3.2).
//!
//! *"The array index structure was used to store ordered data. It is easy
//! to build and scan, but it is useful only as a read-only index because it
//! does not handle updates well."* — every update shifts half the array on
//! average, which is why the paper measured its query-mix performance at
//! two orders of magnitude worse than everything else.
//!
//! It has the minimum possible storage cost (the storage-cost baseline in
//! §3.2.2) and the fastest ordered scan — the property that makes the Sort
//! Merge join competitive for high-output joins (§3.3.4, Test 4).

use crate::adapter::Adapter;
use crate::sort;
use crate::stats::{Counters, Snapshot};
use crate::traits::{bound_ok_hi, bound_ok_lo, IndexError, OrderedIndex};
use std::cmp::Ordering;
use std::ops::Bound;

/// A sorted array of entries with pure binary search.
pub struct ArrayIndex<A: Adapter> {
    adapter: A,
    data: Vec<A::Entry>,
    stats: Counters,
}

impl<A: Adapter> ArrayIndex<A> {
    /// Create an empty array index.
    pub fn new(adapter: A) -> Self {
        ArrayIndex {
            adapter,
            data: Vec::new(),
            stats: Counters::default(),
        }
    }

    /// Build from an arbitrary slice of entries, then sort with the
    /// paper's quicksort/insertion-sort hybrid. This is exactly how the
    /// Sort Merge join constructs its inputs ("array indexes were built on
    /// both relations and then sorted").
    pub fn build_from(adapter: A, entries: &[A::Entry]) -> Self {
        let mut idx = ArrayIndex {
            adapter,
            data: entries.to_vec(),
            stats: Counters::default(),
        };
        idx.stats.data_moves(entries.len() as u64);
        let a = &idx.adapter;
        sort::quicksort(&mut idx.data, &idx.stats, |x, y| a.cmp_entries(x, y));
        idx
    }

    /// Direct read-only access to the sorted entries (fast merge scans).
    #[must_use]
    pub fn as_slice(&self) -> &[A::Entry] {
        &self.data
    }

    /// Index of the first entry with key ≥ `key`.
    fn lower_bound(&self, key: &A::Key) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&self.data[mid], key) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Index of the first entry with key > `key`.
    fn upper_bound(&self, key: &A::Key) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&self.data[mid], key) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Position where `entry` would be inserted (after existing equals).
    fn insert_pos(&self, entry: &A::Entry) -> usize {
        let mut lo = 0usize;
        let mut hi = self.data.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(&self.data[mid], entry) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

impl<A: Adapter> OrderedIndex<A> for ArrayIndex<A> {
    fn insert(&mut self, entry: A::Entry) {
        let pos = self.insert_pos(&entry);
        // Every element after `pos` shifts — the paper's "half of the
        // array, on the average".
        self.stats.data_moves((self.data.len() - pos) as u64 + 1);
        self.data.insert(pos, entry);
    }

    fn insert_unique(&mut self, entry: A::Entry) -> Result<(), IndexError> {
        let pos = self.insert_pos(&entry);
        if pos > 0 {
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(&self.data[pos - 1], &entry) == Ordering::Equal {
                return Err(IndexError::DuplicateKey);
            }
        }
        self.stats.data_moves((self.data.len() - pos) as u64 + 1);
        self.data.insert(pos, entry);
        Ok(())
    }

    fn delete(&mut self, key: &A::Key) -> Option<A::Entry> {
        let pos = self.lower_bound(key);
        if pos < self.data.len() {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&self.data[pos], key) == Ordering::Equal {
                self.stats.data_moves((self.data.len() - pos) as u64);
                return Some(self.data.remove(pos));
            }
        }
        None
    }

    fn delete_entry(&mut self, entry: &A::Entry) -> bool {
        let mut pos = {
            // lower bound by entry key
            let mut lo = 0usize;
            let mut hi = self.data.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                self.stats.comparisons(1);
                if self.adapter.cmp_entries(&self.data[mid], entry) == Ordering::Less {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            lo
        };
        while pos < self.data.len() {
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(&self.data[pos], entry) != Ordering::Equal {
                return false;
            }
            if self.data[pos] == *entry {
                self.stats.data_moves((self.data.len() - pos) as u64);
                self.data.remove(pos);
                return true;
            }
            pos += 1;
        }
        false
    }

    fn search(&self, key: &A::Key) -> Option<A::Entry> {
        let pos = self.lower_bound(key);
        if pos < self.data.len() {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&self.data[pos], key) == Ordering::Equal {
                return Some(self.data[pos]);
            }
        }
        None
    }

    fn search_all(&self, key: &A::Key, out: &mut Vec<A::Entry>) {
        let lo = self.lower_bound(key);
        let hi = self.upper_bound(key);
        out.extend_from_slice(&self.data[lo..hi]);
    }

    fn range(&self, lo: Bound<&A::Key>, hi: Bound<&A::Key>, out: &mut Vec<A::Entry>) {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(k) => self.lower_bound(k),
            Bound::Excluded(k) => self.upper_bound(k),
        };
        for e in &self.data[start..] {
            let ord_hi = match hi {
                Bound::Unbounded => Ordering::Less,
                Bound::Included(k) | Bound::Excluded(k) => {
                    self.stats.comparisons(1);
                    self.adapter.cmp_entry_key(e, k)
                }
            };
            if !bound_ok_hi(ord_hi, &hi) {
                break;
            }
            debug_assert!(bound_ok_lo(Ordering::Equal, &Bound::Unbounded::<&A::Key>));
            out.push(*e);
        }
    }

    fn scan(&self, visit: &mut dyn FnMut(&A::Entry)) {
        for e in &self.data {
            visit(e);
        }
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn storage_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.capacity() * std::mem::size_of::<A::Entry>()
    }

    fn stats(&self) -> Snapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn validate(&self) -> Result<(), String> {
        for (i, w) in self.data.windows(2).enumerate() {
            if self.adapter.cmp_entries(&w[0], &w[1]) == Ordering::Greater {
                return Err(format!("array not sorted at position {i}"));
            }
        }
        Ok(())
    }
}

/// Raw structural access for the `mmdb-check` verification layer.
#[cfg(feature = "check")]
impl<A: Adapter> ArrayIndex<A> {
    /// The adapter, for key comparisons during checking.
    #[must_use]
    pub fn raw_adapter(&self) -> &A {
        &self.adapter
    }

    /// Allocated capacity of the backing array (gap accounting: capacity
    /// minus length is the only admissible "gap" — the array itself must
    /// be dense and sorted).
    #[must_use]
    pub fn raw_capacity(&self) -> usize {
        self.data.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit::{self, DupAdapter};

    fn nat() -> ArrayIndex<NaturalAdapter<u64>> {
        ArrayIndex::new(NaturalAdapter::new())
    }

    #[test]
    fn empty_behaviour() {
        let mut idx = nat();
        assert!(idx.is_empty());
        assert_eq!(idx.search(&7), None);
        assert_eq!(idx.delete(&7), None);
        let mut out = Vec::new();
        idx.range(Bound::Unbounded, Bound::Unbounded, &mut out);
        assert!(out.is_empty());
        idx.validate().unwrap();
    }

    #[test]
    fn insert_search_delete_roundtrip() {
        let mut idx = nat();
        for k in [5u64, 3, 9, 1, 7] {
            idx.insert(k);
        }
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.search(&7), Some(7));
        assert_eq!(idx.search(&4), None);
        assert_eq!(idx.delete(&3), Some(3));
        assert_eq!(idx.search(&3), None);
        assert_eq!(idx.len(), 4);
        idx.validate().unwrap();
    }

    #[test]
    fn insert_unique_rejects_duplicates() {
        let mut idx = nat();
        idx.insert_unique(4).unwrap();
        assert_eq!(idx.insert_unique(4), Err(IndexError::DuplicateKey));
        idx.insert_unique(5).unwrap();
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn range_bounds() {
        let mut idx = nat();
        for k in 0..20u64 {
            idx.insert(k);
        }
        let mut out = Vec::new();
        idx.range(Bound::Included(&5), Bound::Excluded(&10), &mut out);
        assert_eq!(out, vec![5, 6, 7, 8, 9]);
        out.clear();
        idx.range(Bound::Excluded(&5), Bound::Included(&10), &mut out);
        assert_eq!(out, vec![6, 7, 8, 9, 10]);
        out.clear();
        idx.range(Bound::Unbounded, Bound::Excluded(&3), &mut out);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn build_from_sorts() {
        let entries = testkit::shuffled_unique_entries(1000, 99);
        let idx = ArrayIndex::build_from(DupAdapter, &entries);
        idx.validate().unwrap();
        assert_eq!(idx.len(), 1000);
        let mut sorted = entries;
        sorted.sort_unstable();
        assert_eq!(idx.as_slice(), &sorted[..]);
    }

    #[test]
    fn duplicates_search_all() {
        let mut idx = ArrayIndex::new(DupAdapter);
        idx.insert((5 << 16) | 1);
        idx.insert((5 << 16) | 2);
        idx.insert((5 << 16) | 3);
        idx.insert(6 << 16);
        let mut out = Vec::new();
        idx.search_all(&5, &mut out);
        assert_eq!(out.len(), 3);
        assert!(idx.delete_entry(&((5 << 16) | 2)));
        assert!(!idx.delete_entry(&((5 << 16) | 2)));
        out.clear();
        idx.search_all(&5, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn differential_vs_model() {
        let mut idx = ArrayIndex::new(DupAdapter);
        testkit::ordered_differential(DupAdapter, &mut idx, 0xA11A, 4000, 200);
    }

    #[cfg(feature = "stats")]
    #[test]
    fn update_cost_is_linear_in_shift() {
        // The paper: "Every update requires moving half of the array, on
        // the average" — check data_moves grows with position.
        let mut idx = nat();
        for k in 0..1000u64 {
            idx.insert(k * 2);
        }
        idx.reset_stats();
        idx.insert(0); // minimum: shifts the whole array
        let front = idx.stats().data_moves;
        idx.reset_stats();
        idx.insert(10_000); // maximum: shifts nothing
        let back = idx.stats().data_moves;
        assert!(front > 900, "front insert should shift ~1000, got {front}");
        assert!(back <= 2, "back insert should shift ~0, got {back}");
    }

    #[test]
    fn storage_is_minimal() {
        let entries = testkit::shuffled_unique_entries(10_000, 3);
        let idx = ArrayIndex::build_from(DupAdapter, &entries);
        let bytes = idx.storage_bytes();
        let payload = 10_000 * std::mem::size_of::<u64>();
        assert!(
            bytes < payload * 2,
            "array overhead should be small: {bytes}"
        );
    }
}
