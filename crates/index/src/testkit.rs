//! Shared differential-testing machinery for index structures.
//!
//! Every index is checked against a trivially-correct model (a sorted
//! `Vec`) under long randomized operation sequences, with `validate()`
//! (full structural-invariant check) run throughout. The paper did the
//! moral equivalent with operation counters; we go further and check the
//! *contents*.

use crate::adapter::{mix64, Adapter, HashAdapter};
use crate::traits::{OrderedIndex, UnorderedIndex};
use std::cmp::Ordering;
use std::ops::Bound;

/// Adapter whose key is the high 48 bits of the entry: distinct entries can
/// share a key, exercising duplicate handling and `delete_entry`.
#[derive(Debug, Default, Clone, Copy)]
pub struct DupAdapter;

/// Extract the key (high bits) of a [`DupAdapter`] entry.
pub fn dup_key(e: u64) -> u64 {
    e >> 16
}

impl Adapter for DupAdapter {
    type Entry = u64;
    type Key = u64;

    fn cmp_entries(&self, a: &u64, b: &u64) -> Ordering {
        dup_key(*a).cmp(&dup_key(*b))
    }

    fn cmp_entry_key(&self, e: &u64, key: &u64) -> Ordering {
        dup_key(*e).cmp(key)
    }
}

impl HashAdapter for DupAdapter {
    fn hash_entry(&self, e: &u64) -> u64 {
        mix64(dup_key(*e))
    }

    fn hash_key(&self, key: &u64) -> u64 {
        mix64(*key)
    }
}

/// Tiny deterministic RNG (xorshift*) so unit tests don't need `rand`.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(seed.max(1))
    }

    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Reference model: a Vec of entries sorted by key (via the adapter), with
/// multiset semantics for duplicate keys.
pub struct Model<A: Adapter<Entry = u64, Key = u64>> {
    adapter: A,
    entries: Vec<u64>,
}

impl<A: Adapter<Entry = u64, Key = u64>> Model<A> {
    pub fn new(adapter: A) -> Self {
        Model {
            adapter,
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, e: u64) {
        let pos = self
            .entries
            .partition_point(|x| self.adapter.cmp_entries(x, &e) != Ordering::Greater);
        self.entries.insert(pos, e);
    }

    pub fn contains_key(&self, k: u64) -> bool {
        self.entries
            .iter()
            .any(|e| self.adapter.cmp_entry_key(e, &k) == Ordering::Equal)
    }

    #[allow(dead_code)]
    pub fn delete_by_key(&mut self, k: u64) -> Option<u64> {
        let pos = self
            .entries
            .iter()
            .position(|e| self.adapter.cmp_entry_key(e, &k) == Ordering::Equal)?;
        Some(self.entries.remove(pos))
    }

    pub fn delete_entry(&mut self, e: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|x| *x == e) {
            self.entries.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn search_all(&self, k: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .entries
            .iter()
            .copied()
            .filter(|e| self.adapter.cmp_entry_key(e, &k) == Ordering::Equal)
            .collect();
        v.sort_unstable();
        v
    }

    pub fn range(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .entries
            .iter()
            .copied()
            .filter(|e| {
                self.adapter.cmp_entry_key(e, &lo) != Ordering::Less
                    && self.adapter.cmp_entry_key(e, &hi) != Ordering::Greater
            })
            .collect();
        v.sort_unstable();
        v
    }

    pub fn all_sorted(&self) -> Vec<u64> {
        let mut v = self.entries.clone();
        v.sort_unstable();
        v
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn pick(&self, rng: &mut TestRng) -> Option<u64> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries[rng.below(self.entries.len() as u64) as usize])
        }
    }
}

fn assert_sorted_by_key<A: Adapter<Entry = u64, Key = u64>>(adapter: &A, v: &[u64], ctx: &str) {
    for w in v.windows(2) {
        assert_ne!(
            adapter.cmp_entries(&w[0], &w[1]),
            Ordering::Greater,
            "{ctx}: scan out of order: {} then {}",
            w[0],
            w[1]
        );
    }
}

/// Drive an ordered index and the model through `steps` randomized
/// operations, cross-checking everything after every `check_every` steps.
pub fn ordered_differential<A, I>(
    adapter: A,
    index: &mut I,
    seed: u64,
    steps: usize,
    key_space: u64,
) where
    A: Adapter<Entry = u64, Key = u64> + Copy,
    I: OrderedIndex<A> + ?Sized,
{
    let mut rng = TestRng::new(seed);
    let mut model = Model::new(adapter);
    for step in 0..steps {
        let roll = rng.below(100);
        if roll < 40 {
            // Insert (possibly duplicate key).
            let e = (rng.below(key_space) << 16) | rng.below(1 << 16);
            index.insert(e);
            model.insert(e);
        } else if roll < 50 {
            // insert_unique
            let e = (rng.below(key_space) << 16) | rng.below(1 << 16);
            let k = dup_key_via(adapter, e);
            let expect_dup = model.contains_key(k);
            match index.insert_unique(e) {
                Ok(()) => {
                    assert!(
                        !expect_dup,
                        "step {step}: insert_unique accepted duplicate {k}"
                    );
                    model.insert(e);
                }
                Err(_) => assert!(
                    expect_dup,
                    "step {step}: insert_unique rejected fresh key {k}"
                ),
            }
        } else if roll < 65 {
            // Delete by key.
            let k = rng.below(key_space);
            let got = index.delete(&k);
            match got {
                Some(e) => {
                    assert_eq!(
                        adapter.cmp_entry_key(&e, &k),
                        Ordering::Equal,
                        "step {step}: delete returned wrong-key entry"
                    );
                    assert!(
                        model.delete_entry(e),
                        "step {step}: delete invented entry {e}"
                    );
                }
                None => assert!(
                    !model.contains_key(k),
                    "step {step}: delete missed existing key {k}"
                ),
            }
        } else if roll < 72 {
            // Delete a specific (existing) entry.
            if let Some(e) = model.pick(&mut rng) {
                assert!(index.delete_entry(&e), "step {step}: delete_entry lost {e}");
                model.delete_entry(e);
            }
        } else if roll < 74 {
            // Delete a non-existent entry.
            let e = u64::MAX - rng.below(1000);
            assert_eq!(index.delete_entry(&e), model.delete_entry(e));
        } else if roll < 86 {
            // Point search.
            let k = rng.below(key_space);
            let got = index.search(&k);
            match got {
                Some(e) => {
                    assert_eq!(adapter.cmp_entry_key(&e, &k), Ordering::Equal);
                    assert!(model.contains_key(k));
                }
                None => assert!(!model.contains_key(k), "step {step}: search missed key {k}"),
            }
            // search_all multiset check.
            let mut all = Vec::new();
            index.search_all(&k, &mut all);
            all.sort_unstable();
            assert_eq!(all, model.search_all(k), "step {step}: search_all({k})");
        } else if roll < 94 {
            // Range query.
            let a = rng.below(key_space);
            let b = rng.below(key_space);
            let (lo, hi) = (a.min(b), a.max(b));
            let mut out = Vec::new();
            index.range(Bound::Included(&lo), Bound::Included(&hi), &mut out);
            assert_sorted_by_key(&adapter, &out, &format!("step {step} range"));
            out.sort_unstable();
            assert_eq!(out, model.range(lo, hi), "step {step}: range [{lo},{hi}]");
        } else {
            // Full scan.
            let mut out = Vec::new();
            index.scan(&mut |e| out.push(*e));
            assert_sorted_by_key(&adapter, &out, &format!("step {step} scan"));
            out.sort_unstable();
            assert_eq!(out, model.all_sorted(), "step {step}: scan");
        }
        assert_eq!(index.len(), model.len(), "step {step}: len");
        if step % 64 == 0 {
            if let Err(e) = index.validate() {
                panic!("step {step}: invariant violated: {e}");
            }
        }
    }
    index.validate().expect("final validate");
    let mut out = Vec::new();
    index.scan(&mut |e| out.push(*e));
    out.sort_unstable();
    assert_eq!(out, model.all_sorted(), "final contents");
}

/// Same as [`ordered_differential`] but for hash (unordered) indices.
pub fn unordered_differential<A, I>(
    adapter: A,
    index: &mut I,
    seed: u64,
    steps: usize,
    key_space: u64,
) where
    A: HashAdapter<Entry = u64, Key = u64> + Copy,
    I: UnorderedIndex<A> + ?Sized,
{
    let mut rng = TestRng::new(seed);
    let mut model = Model::new(adapter);
    for step in 0..steps {
        let roll = rng.below(100);
        if roll < 45 {
            let e = (rng.below(key_space) << 16) | rng.below(1 << 16);
            index.insert(e);
            model.insert(e);
        } else if roll < 55 {
            let e = (rng.below(key_space) << 16) | rng.below(1 << 16);
            let k = dup_key_via(adapter, e);
            let expect_dup = model.contains_key(k);
            match index.insert_unique(e) {
                Ok(()) => {
                    assert!(!expect_dup, "step {step}: insert_unique accepted duplicate");
                    model.insert(e);
                }
                Err(_) => assert!(expect_dup, "step {step}: insert_unique rejected fresh key"),
            }
        } else if roll < 72 {
            let k = rng.below(key_space);
            match index.delete(&k) {
                Some(e) => {
                    assert_eq!(adapter.cmp_entry_key(&e, &k), Ordering::Equal);
                    assert!(model.delete_entry(e), "step {step}: delete invented entry");
                }
                None => assert!(!model.contains_key(k), "step {step}: delete missed {k}"),
            }
        } else if roll < 78 {
            if let Some(e) = model.pick(&mut rng) {
                assert!(index.delete_entry(&e), "step {step}: delete_entry lost {e}");
                model.delete_entry(e);
            }
        } else {
            let k = rng.below(key_space);
            match index.search(&k) {
                Some(e) => {
                    assert_eq!(adapter.cmp_entry_key(&e, &k), Ordering::Equal);
                    assert!(model.contains_key(k));
                }
                None => assert!(!model.contains_key(k), "step {step}: search missed {k}"),
            }
            let mut all = Vec::new();
            index.search_all(&k, &mut all);
            all.sort_unstable();
            assert_eq!(all, model.search_all(k), "step {step}: search_all({k})");
        }
        assert_eq!(index.len(), model.len(), "step {step}: len");
        if step % 64 == 0 {
            if let Err(e) = index.validate() {
                panic!("step {step}: invariant violated: {e}");
            }
        }
    }
    index.validate().expect("final validate");
    let mut out = Vec::new();
    index.scan(&mut |e| out.push(*e));
    out.sort_unstable();
    assert_eq!(out, model.all_sorted(), "final contents");
}

fn dup_key_via<A: Adapter<Entry = u64, Key = u64>>(_a: A, e: u64) -> u64 {
    dup_key(e)
}

/// Bulk-load helper: n entries with unique keys, shuffled deterministically.
pub fn shuffled_unique_entries(n: usize, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n as u64).map(|k| k << 16).collect();
    let mut rng = TestRng::new(seed);
    for i in (1..v.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        v.swap(i, j);
    }
    v
}
