//! Layout math for bulk index construction (restart's index-rebuild phase).
//!
//! §2.4 of the paper keeps a backup copy of each index on disk precisely
//! because rebuilding indices dominates restart; "Compressed Key Sort and
//! Fast Index Reconstruction" (PAPERS.md) shows the alternative this module
//! implements: sort compact key tags once, then materialise the index
//! bottom-up in one pass, never rebalancing and never splitting.
//!
//! This module is pure arithmetic — it computes *shapes*, not nodes — so it
//! can sit under the `panic-path` lint gate: no indexing, no `unwrap`, and
//! no division by runtime values. [`TTree::build_from_sorted`] and
//! [`ModifiedLinearHash::bulk_fill`] consume these plans and do the actual
//! arena writes.
//!
//! [`TTree::build_from_sorted`]: crate::ttree::TTree::build_from_sorted
//! [`ModifiedLinearHash::bulk_fill`]: crate::modlinear::ModifiedLinearHash::bulk_fill
//!
//! # T-Tree shape
//!
//! [`balanced_shape`] slices `n` sorted elements into chunks of `fill`
//! elements (the tree's `min_count`; the last chunk may be short) and
//! arranges the chunks as a count-balanced binary tree:
//!
//! * every chunk except the last holds exactly `fill` elements, so every
//!   *internal* node meets the paper's minimum-count invariant by
//!   construction;
//! * the short chunk, if any, holds the largest keys and is therefore the
//!   rightmost node of the tree — a node with no right child, i.e. a leaf
//!   or half-leaf, which the occupancy invariant exempts;
//! * the midpoint recursion leaves sibling subtree sizes within one chunk
//!   of each other, which bounds sibling *heights* within one — the AVL
//!   balance the T-Tree maintains incrementally holds at birth.
//!
//! # Hash directory layout
//!
//! [`hash_directory_layout`] answers "had the entries been inserted one at
//! a time, how large would the directory have grown?" — the smallest
//! directory whose average chain length does not exceed the target — and
//! expresses it in linear-hashing terms (`level`, `split`) so the
//! split-pointer address function is consistent from the first probe.

/// One node of a bulk-built T-Tree: a chunk of the sorted input plus tree
/// links, all expressed as indices into the shape vector itself (the
/// builder maps them 1:1 onto arena ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeNode {
    /// First element of this node's chunk in the sorted input.
    pub start: usize,
    /// One past the last element of this node's chunk.
    pub end: usize,
    /// Shape index of the left child.
    pub left: Option<usize>,
    /// Shape index of the right child.
    pub right: Option<usize>,
    /// Shape index of the parent.
    pub parent: Option<usize>,
    /// AVL height (leaves are 1), precomputed bottom-up.
    pub height: i32,
}

/// Compute the node layout for a bulk-built T-Tree over `n` sorted
/// elements with `fill` elements per node (clamped to at least 1).
///
/// Returns one [`ShapeNode`] per chunk; the subtree root is pushed before
/// its children, so the overall root is element 0 and parents always
/// precede children. Empty input yields an empty shape.
#[must_use]
pub fn balanced_shape(n: usize, fill: usize) -> Vec<ShapeNode> {
    let fill = fill.max(1);
    let chunks = n.div_ceil(fill);
    let mut shape = Vec::with_capacity(chunks);
    shape_range(0, chunks, None, n, fill, &mut shape);
    shape
}

/// Recursive midpoint split over the chunk range `lo..hi`; returns the
/// subtree's height (0 for an empty range). Depth is `log2(chunks)`.
fn shape_range(
    lo: usize,
    hi: usize,
    parent: Option<usize>,
    n: usize,
    fill: usize,
    shape: &mut Vec<ShapeNode>,
) -> i32 {
    if lo >= hi {
        return 0;
    }
    let mid = lo + (hi - lo) / 2;
    let idx = shape.len();
    shape.push(ShapeNode {
        start: mid.saturating_mul(fill),
        end: mid.saturating_add(1).saturating_mul(fill).min(n),
        left: None,
        right: None,
        parent,
        height: 0,
    });
    let hl = shape_range(lo, mid, Some(idx), n, fill, shape);
    let left = (hl > 0).then(|| idx.saturating_add(1));
    let right_idx = shape.len();
    let hr = shape_range(mid.saturating_add(1), hi, Some(idx), n, fill, shape);
    let right = (hr > 0).then_some(right_idx);
    let height = 1 + hl.max(hr);
    if let Some(node) = shape.get_mut(idx) {
        node.left = left;
        node.right = right;
        node.height = height;
    }
    height
}

/// A linear-hashing directory sized for a known cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashLayout {
    /// Doubling level: the base of the round is `initial << level`.
    pub level: u32,
    /// Split pointer within the round; strictly below the base.
    pub split: usize,
    /// Total directory slots, `= base + split`.
    pub directory_len: usize,
}

/// Size a linear-hashing directory for `n` entries: the smallest
/// directory of at least `initial` slots whose average chain length
/// (`n / slots`) does not exceed `target_chain`, decomposed into the
/// `(level, split)` pair the split-pointer address function needs.
///
/// Minimality matters beyond memory: growth triggers strictly above the
/// target and contraction strictly below half of it, and for any
/// above-`initial` minimal directory the average lands in
/// `(target/2, target]` — so a bulk-filled table reorganises exactly as
/// late as an incrementally filled one would.
#[must_use]
pub fn hash_directory_layout(n: usize, target_chain: f64, initial_buckets: usize) -> HashLayout {
    let initial = initial_buckets.max(1);
    let target = if target_chain >= 1.0 {
        target_chain
    } else {
        1.0
    };
    // `n / d <= target` rearranged multiplicatively to stay division-free.
    let fits = |d: usize| (n as f64) <= target * (d as f64);
    let mut hi = initial;
    while !fits(hi) {
        hi = hi.saturating_mul(2);
    }
    let mut lo = initial;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            hi = mid;
        } else {
            lo = mid.saturating_add(1);
        }
    }
    let directory_len = lo;
    let mut level = 0u32;
    let mut base = initial;
    while base.saturating_mul(2) <= directory_len {
        base = base.saturating_mul(2);
        level = level.saturating_add(1);
    }
    HashLayout {
        level,
        split: directory_len.saturating_sub(base),
        directory_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_shape(n: usize, fill: usize) {
        let shape = balanced_shape(n, fill);
        let fill = fill.max(1);
        assert_eq!(shape.len(), n.div_ceil(fill), "n={n} fill={fill}");
        if n == 0 {
            return;
        }
        // Chunks must tile 0..n exactly, in in-order traversal order.
        let mut ranges: Vec<(usize, usize)> = shape.iter().map(|s| (s.start, s.end)).collect();
        ranges.sort_unstable();
        let mut expect_start = 0usize;
        for (i, &(s, e)) in ranges.iter().enumerate() {
            assert_eq!(s, expect_start, "n={n} fill={fill} chunk {i}");
            assert!(e > s);
            let len = e - s;
            if i + 1 < ranges.len() {
                assert_eq!(len, fill, "only the last chunk may be short");
            } else {
                assert!(len <= fill);
            }
            expect_start = e;
        }
        assert_eq!(expect_start, n);
        // Link integrity + AVL balance + height correctness, bottom-up.
        assert_eq!(shape[0].parent, None);
        for (i, s) in shape.iter().enumerate() {
            let hl = s.left.map_or(0, |l| {
                assert_eq!(shape[l].parent, Some(i));
                assert!(shape[l].end <= s.start, "left child keys must precede");
                shape[l].height
            });
            let hr = s.right.map_or(0, |r| {
                assert_eq!(shape[r].parent, Some(i));
                assert!(shape[r].start >= s.end, "right child keys must follow");
                shape[r].height
            });
            assert_eq!(s.height, 1 + hl.max(hr), "node {i}");
            assert!((hl - hr).abs() <= 1, "node {i} unbalanced: {hl} vs {hr}");
        }
        // The short chunk (if any) must sit where it has no right child.
        let last = ranges.len() - 1;
        if let Some(short) = shape.iter().position(|s| s.end - s.start < fill) {
            assert_eq!((shape[short].start, shape[short].end), ranges[last]);
            assert_eq!(shape[short].right, None);
        }
    }

    #[test]
    fn shapes_across_sizes_and_fills() {
        for fill in [0, 1, 2, 3, 7, 28, 100] {
            for n in [0usize, 1, 2, 3, 7, 8, 9, 27, 28, 29, 55, 56, 57, 1000, 1001] {
                check_shape(n, fill);
            }
        }
    }

    #[test]
    fn shape_root_first_parents_precede_children() {
        let shape = balanced_shape(1000, 7);
        for (i, s) in shape.iter().enumerate() {
            if let Some(p) = s.parent {
                assert!(p < i, "parent {p} must precede child {i}");
            }
        }
    }

    #[test]
    fn hash_layout_minimal_and_decomposed() {
        for target in [1usize, 2, 4, 8] {
            for n in [0usize, 1, 3, 4, 5, 16, 17, 100, 1000, 99_999, 100_000] {
                let l = hash_directory_layout(n, target as f64, 4);
                let base = 4usize << l.level;
                assert_eq!(l.directory_len, base + l.split, "n={n} target={target}");
                assert!(l.split < base, "n={n} target={target}");
                assert!(l.directory_len >= 4);
                // Average chain within [0, target]; minimal directory.
                assert!(n <= target * l.directory_len, "avg exceeds target");
                if l.directory_len > 4 {
                    assert!(
                        n > target * (l.directory_len - 1),
                        "n={n} target={target}: directory {} not minimal",
                        l.directory_len
                    );
                }
            }
        }
    }

    #[test]
    fn hash_layout_clamps_degenerate_inputs() {
        let l = hash_directory_layout(100, 0.0, 0);
        assert!(l.directory_len >= 100, "target clamps to 1");
        let l = hash_directory_layout(0, 2.0, 4);
        assert_eq!((l.level, l.split, l.directory_len), (0, 0, 4));
    }
}
