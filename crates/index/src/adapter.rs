//! Entry/key adapters: how an index reaches "the key" of an entry.
//!
//! §2.2 of the paper: *"it is not necessary for a main memory index to
//! store actual attribute values. Instead, pointers to tuples can be stored
//! in their place, and these pointers can be used to extract the attribute
//! values when needed."*
//!
//! Index structures in this crate therefore never constrain their entry
//! type with `Ord`/`Hash`. They store opaque `Copy` entries and delegate
//! all key semantics to an [`Adapter`]: in the MM-DBMS the adapter holds a
//! reference to tuple storage and dereferences a `TupleId` to the indexed
//! attribute; in tests and micro-benchmarks [`NaturalAdapter`] compares
//! integers directly.

use std::cmp::Ordering;
use std::marker::PhantomData;

/// Key semantics for an index entry type.
///
/// `Entry` is what the index physically stores (a tuple pointer in the
/// MM-DBMS). `Key` is the probe type used by searches — typically the
/// attribute value itself.
pub trait Adapter {
    /// The stored entry type (tuple pointer / integer).
    type Entry: Copy + PartialEq;
    /// The probe key type used for searches and range bounds.
    type Key: ?Sized;

    /// Total order over two stored entries (dereference both, compare keys).
    fn cmp_entries(&self, a: &Self::Entry, b: &Self::Entry) -> Ordering;

    /// Compare a stored entry's key against a probe key.
    fn cmp_entry_key(&self, e: &Self::Entry, key: &Self::Key) -> Ordering;

    /// A monotone 64-bit summary of an entry's key: whenever
    /// `cmp_entries(a, b)` is `Less`, `entry_tag(a) <= entry_tag(b)`, and
    /// equal keys always produce equal tags. Unequal tags therefore
    /// decide an order *without* dereferencing the entry — the T-Tree
    /// caches the tags of each node's bounding keys so descent skips the
    /// tuple-pointer dereference on most nodes (§2.2's pointer-chase is
    /// the dominant search cost for stored-attribute adapters). Equal
    /// tags decide nothing and fall back to the full comparison, so the
    /// conservative default of `0` is always correct.
    #[inline]
    fn entry_tag(&self, _e: &Self::Entry) -> u64 {
        0
    }

    /// The probe-key counterpart of [`Adapter::entry_tag`]: must agree
    /// with it under [`Adapter::cmp_entry_key`] (same monotonicity, and
    /// a key equal to an entry's key gets the entry's tag).
    #[inline]
    fn key_tag(&self, _key: &Self::Key) -> u64 {
        0
    }
}

/// Additional semantics required by hash-based indices.
pub trait HashAdapter: Adapter {
    /// Hash a stored entry's key.
    fn hash_entry(&self, e: &Self::Entry) -> u64;

    /// Hash a probe key (must agree with [`HashAdapter::hash_entry`]).
    fn hash_key(&self, key: &Self::Key) -> u64;
}

/// Adapter for entries that *are* their own keys (integers in tests and in
/// the index micro-benchmarks, where the paper likewise indexed 4-byte
/// values through pointers of equal size).
#[derive(Debug, Default, Clone, Copy)]
pub struct NaturalAdapter<T>(PhantomData<T>);

impl<T> NaturalAdapter<T> {
    /// Create a natural adapter.
    #[must_use]
    pub fn new() -> Self {
        NaturalAdapter(PhantomData)
    }
}

impl<T: Copy + Ord> Adapter for NaturalAdapter<T> {
    type Entry = T;
    type Key = T;

    #[inline]
    fn cmp_entries(&self, a: &T, b: &T) -> Ordering {
        a.cmp(b)
    }

    #[inline]
    fn cmp_entry_key(&self, e: &T, key: &T) -> Ordering {
        e.cmp(key)
    }
}

/// Fibonacci (multiplicative) hashing of a 64-bit value — the fixed-cost
/// hash function the hash-based structures share. Cheap, statistically
/// well-spread, and deliberately *not* perfectly uniform over small tables
/// (the paper notes Chained Bucket Hashing left part of its table unused
/// because "the hash function was not perfectly uniform").
#[inline]
#[must_use]
pub fn mix64(x: u64) -> u64 {
    // splitmix64 finalizer.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

macro_rules! natural_hash_adapter {
    ($($t:ty),*) => {$(
        impl HashAdapter for NaturalAdapter<$t> {
            #[inline]
            fn hash_entry(&self, e: &$t) -> u64 {
                mix64(*e as u64)
            }
            #[inline]
            fn hash_key(&self, key: &$t) -> u64 {
                mix64(*key as u64)
            }
        }
    )*};
}

natural_hash_adapter!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_adapter_orders_like_ord() {
        let a = NaturalAdapter::<u64>::new();
        assert_eq!(a.cmp_entries(&1, &2), Ordering::Less);
        assert_eq!(a.cmp_entries(&2, &2), Ordering::Equal);
        assert_eq!(a.cmp_entry_key(&3, &2), Ordering::Greater);
    }

    #[test]
    fn natural_adapter_hash_is_consistent() {
        let a = NaturalAdapter::<u64>::new();
        for k in [0u64, 1, 42, u64::MAX] {
            assert_eq!(a.hash_entry(&k), a.hash_key(&k));
        }
    }

    #[test]
    fn mix64_spreads_consecutive_keys() {
        // Consecutive integers should land in different low-bit buckets
        // most of the time.
        let mut same_bucket = 0;
        for k in 0..1024u64 {
            if mix64(k) & 0xFF == mix64(k + 1) & 0xFF {
                same_bucket += 1;
            }
        }
        assert!(same_bucket < 30, "too many collisions: {same_bucket}");
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(12345), mix64(12346));
    }
}
