//! Extendible Hashing \[FNP79\] (§3.2).
//!
//! A directory of 2^`global_depth` bucket pointers; each bucket has a
//! `local_depth` and a fixed capacity (the "Node Size" axis of the
//! graphs). An overflowing bucket with `local_depth < global_depth` splits
//! in place; one with `local_depth == global_depth` forces the directory to
//! double.
//!
//! The paper's storage finding is reproduced by construction: *"Extendible
//! Hashing tended to use the largest amount of storage for small node
//! sizes (2, 4 and 6) … a small node size increased the probability that
//! some nodes would get more values than others, causing the directory to
//! double repeatedly."*
//!
//! Buckets are addressed by the **low** `global_depth` bits of the hash.
//! Entries whose keys are duplicates hash identically and can never be
//! separated by splitting; a bucket whose contents all share the incoming
//! entry's hash therefore overflows its nominal capacity instead of
//! splitting (duplicate chains are a data property, not a structure
//! failure).

use crate::adapter::HashAdapter;
use crate::stats::{Counters, Snapshot};
use crate::traits::{IndexError, UnorderedIndex};
use std::cmp::Ordering;

/// Hard ceiling on directory doubling (2^24 slots ≈ 64 MB of directory);
/// beyond it buckets simply overflow.
pub const MAX_GLOBAL_DEPTH: u32 = 24;

struct Bucket<E> {
    local_depth: u32,
    /// The low `local_depth` bits shared by every hash in this bucket.
    pattern: u64,
    items: Vec<E>,
}

/// An extendible hash table.
pub struct ExtendibleHash<A: HashAdapter> {
    adapter: A,
    /// Directory of bucket-arena indices, length 2^global_depth.
    directory: Vec<u32>,
    buckets: Vec<Bucket<A::Entry>>,
    global_depth: u32,
    bucket_capacity: usize,
    len: usize,
    stats: Counters,
}

impl<A: HashAdapter> ExtendibleHash<A> {
    /// Create with the given bucket capacity ("node size").
    pub fn new(adapter: A, bucket_capacity: usize) -> Self {
        let bucket_capacity = bucket_capacity.max(1);
        let buckets = vec![Bucket {
            local_depth: 0,
            pattern: 0,
            items: Vec::with_capacity(bucket_capacity),
        }];
        ExtendibleHash {
            adapter,
            directory: vec![0],
            buckets,
            global_depth: 0,
            bucket_capacity,
            len: 0,
            stats: Counters::default(),
        }
    }

    /// Current directory size (2^global_depth).
    #[must_use]
    pub fn directory_size(&self) -> usize {
        self.directory.len()
    }

    /// Current global depth.
    #[must_use]
    pub fn global_depth(&self) -> u32 {
        self.global_depth
    }

    /// Configured bucket capacity.
    #[must_use]
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    fn dir_slot(&self, hash: u64) -> usize {
        (hash & ((self.directory.len() - 1) as u64)) as usize
    }

    fn bucket_for_hash(&self, hash: u64) -> u32 {
        self.directory[self.dir_slot(hash)]
    }

    fn double_directory(&mut self) {
        self.stats.restructures(1);
        let old = self.directory.clone();
        self.directory.extend_from_slice(&old);
        self.global_depth += 1;
    }

    /// Split bucket `b` (requires `local_depth < global_depth`): entries
    /// with the new distinguishing bit set move to a fresh bucket, and the
    /// directory slots addressing `b` through that bit are repointed
    /// (stride walk — the slots of a depth-`d` bucket with pattern `p` are
    /// exactly `p, p + 2^d, p + 2·2^d, …`).
    fn split_bucket(&mut self, b: u32) {
        self.stats.restructures(1);
        let old_depth = self.buckets[b as usize].local_depth;
        let pattern = self.buckets[b as usize].pattern;
        let new_depth = old_depth + 1;
        let bit = 1u64 << old_depth;
        let old_items = std::mem::take(&mut self.buckets[b as usize].items);
        let mut stay = Vec::with_capacity(self.bucket_capacity);
        let mut go = Vec::with_capacity(self.bucket_capacity);
        for e in old_items {
            self.stats.hash_calls(1);
            self.stats.data_moves(1);
            if self.adapter.hash_entry(&e) & bit != 0 {
                go.push(e);
            } else {
                stay.push(e);
            }
        }
        self.buckets[b as usize].local_depth = new_depth;
        self.buckets[b as usize].items = stay;
        let new_id = self.buckets.len() as u32;
        self.buckets.push(Bucket {
            local_depth: new_depth,
            pattern: pattern | bit,
            items: go,
        });
        // Repoint: slots with the new bit set, among those matching the
        // old pattern.
        let stride = 1usize << new_depth;
        let mut slot = (pattern | bit) as usize;
        while slot < self.directory.len() {
            debug_assert_eq!(self.directory[slot], b);
            self.directory[slot] = new_id;
            slot += stride;
        }
    }

    /// Can splitting ever separate this entry from the bucket's current
    /// contents? Not if every resident hash equals the incoming hash.
    fn splittable(&self, b: u32, hash: u64) -> bool {
        self.buckets[b as usize]
            .items
            .iter()
            .any(|e| self.adapter.hash_entry(e) != hash)
    }

    fn insert_hashed(&mut self, entry: A::Entry, hash: u64) {
        loop {
            let b = self.bucket_for_hash(hash);
            if self.buckets[b as usize].items.len() < self.bucket_capacity {
                self.buckets[b as usize].items.push(entry);
                self.stats.data_moves(1);
                self.len += 1;
                return;
            }
            if !self.splittable(b, hash) {
                // All residents share the incoming hash (duplicate keys):
                // splitting can never help; overflow the bucket.
                self.buckets[b as usize].items.push(entry);
                self.stats.data_moves(1);
                self.len += 1;
                return;
            }
            let local = self.buckets[b as usize].local_depth;
            if local < self.global_depth {
                self.split_bucket(b);
            } else if self.global_depth < MAX_GLOBAL_DEPTH {
                self.double_directory();
            } else {
                self.buckets[b as usize].items.push(entry);
                self.stats.data_moves(1);
                self.len += 1;
                return;
            }
        }
    }
}

impl<A: HashAdapter> UnorderedIndex<A> for ExtendibleHash<A> {
    fn insert(&mut self, entry: A::Entry) {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_entry(&entry);
        self.insert_hashed(entry, hash);
    }

    fn insert_unique(&mut self, entry: A::Entry) -> Result<(), IndexError> {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_entry(&entry);
        let b = self.bucket_for_hash(hash);
        for e in &self.buckets[b as usize].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entries(e, &entry) == Ordering::Equal {
                return Err(IndexError::DuplicateKey);
            }
        }
        self.insert_hashed(entry, hash);
        Ok(())
    }

    fn delete(&mut self, key: &A::Key) -> Option<A::Entry> {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_key(key);
        let b = self.bucket_for_hash(hash);
        self.stats.node_visits(1);
        let bucket = &mut self.buckets[b as usize];
        for i in 0..bucket.items.len() {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(&bucket.items[i], key) == Ordering::Equal {
                let e = bucket.items.swap_remove(i);
                self.stats.data_moves(1);
                self.len -= 1;
                return Some(e);
            }
        }
        None
    }

    fn delete_entry(&mut self, entry: &A::Entry) -> bool {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_entry(entry);
        let b = self.bucket_for_hash(hash);
        self.stats.node_visits(1);
        let bucket = &mut self.buckets[b as usize];
        for i in 0..bucket.items.len() {
            self.stats.comparisons(1);
            if bucket.items[i] == *entry {
                bucket.items.swap_remove(i);
                self.stats.data_moves(1);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    fn search(&self, key: &A::Key) -> Option<A::Entry> {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_key(key);
        let b = self.bucket_for_hash(hash);
        self.stats.node_visits(1);
        for e in &self.buckets[b as usize].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(e, key) == Ordering::Equal {
                return Some(*e);
            }
        }
        None
    }

    fn search_all(&self, key: &A::Key, out: &mut Vec<A::Entry>) {
        self.stats.hash_calls(1);
        let hash = self.adapter.hash_key(key);
        let b = self.bucket_for_hash(hash);
        self.stats.node_visits(1);
        for e in &self.buckets[b as usize].items {
            self.stats.comparisons(1);
            if self.adapter.cmp_entry_key(e, key) == Ordering::Equal {
                out.push(*e);
            }
        }
    }

    fn scan(&self, visit: &mut dyn FnMut(&A::Entry)) {
        // Each bucket appears in the directory 2^(global-local) times; scan
        // the bucket arena directly to visit entries exactly once.
        for b in &self.buckets {
            for e in &b.items {
                visit(e);
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn storage_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.directory.capacity() * std::mem::size_of::<u32>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket<A::Entry>>();
        for b in &self.buckets {
            total += b.items.capacity() * std::mem::size_of::<A::Entry>();
        }
        total
    }

    fn stats(&self) -> Snapshot {
        self.stats.snapshot()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn validate(&self) -> Result<(), String> {
        if self.directory.len() != 1usize << self.global_depth {
            return Err("directory size != 2^global_depth".into());
        }
        let mut counted = 0usize;
        let mut slots_seen = 0usize;
        for (id, b) in self.buckets.iter().enumerate() {
            if b.local_depth > self.global_depth {
                return Err(format!("bucket {id}: local depth exceeds global"));
            }
            let mask = (1u64 << b.local_depth) - 1;
            if b.pattern & !mask != 0 {
                return Err(format!("bucket {id}: pattern has high bits"));
            }
            // Every slot congruent to the pattern must point here.
            let stride = 1usize << b.local_depth;
            let mut slot = b.pattern as usize;
            while slot < self.directory.len() {
                if self.directory[slot] != id as u32 {
                    return Err(format!(
                        "slot {slot} should point to bucket {id}, points to {}",
                        self.directory[slot]
                    ));
                }
                slots_seen += 1;
                slot += stride;
            }
            for e in &b.items {
                if self.adapter.hash_entry(e) & mask != b.pattern {
                    return Err(format!("bucket {id}: entry hashed elsewhere"));
                }
            }
            counted += b.items.len();
        }
        if slots_seen != self.directory.len() {
            return Err(format!(
                "buckets cover {slots_seen} slots, directory has {}",
                self.directory.len()
            ));
        }
        if counted != self.len {
            return Err(format!("len {} but buckets hold {counted}", self.len));
        }
        Ok(())
    }
}

/// Raw structural access for the `mmdb-check` verification layer.
#[cfg(feature = "check")]
impl<A: HashAdapter> ExtendibleHash<A> {
    /// The directory: bucket arena ids, length `2^global_depth`.
    #[must_use]
    pub fn raw_directory(&self) -> Vec<u32> {
        self.directory.clone()
    }

    /// Every bucket in the arena.
    #[must_use]
    pub fn raw_buckets(&self) -> Vec<crate::raw::ExtBucketView<A::Entry>> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(id, b)| crate::raw::ExtBucketView {
                id: id as u32,
                local_depth: b.local_depth,
                pattern: b.pattern,
                entries: b.items.clone(),
            })
            .collect()
    }

    /// The hash of an entry (directory addressing uses its low bits).
    #[must_use]
    pub fn raw_hash_of(&self, e: &A::Entry) -> u64 {
        self.adapter.hash_entry(e)
    }

    /// The adapter, for key comparisons during checking.
    #[must_use]
    pub fn raw_adapter(&self) -> &A {
        &self.adapter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapter::NaturalAdapter;
    use crate::testkit::{self, DupAdapter};

    fn nat(cap: usize) -> ExtendibleHash<NaturalAdapter<u64>> {
        ExtendibleHash::new(NaturalAdapter::new(), cap)
    }

    #[test]
    fn empty() {
        let mut h = nat(4);
        assert_eq!(h.search(&9), None);
        assert_eq!(h.delete(&9), None);
        h.validate().unwrap();
    }

    #[test]
    fn grows_directory_under_load() {
        let mut h = nat(4);
        for k in 0..1000u64 {
            h.insert(k);
        }
        h.validate().unwrap();
        assert!(h.global_depth() >= 6, "depth {}", h.global_depth());
        for k in 0..1000u64 {
            assert_eq!(h.search(&k), Some(k));
        }
    }

    #[test]
    fn small_nodes_inflate_directory() {
        // Paper §3.2.2: small node sizes cause repeated directory doubling.
        let mut small = nat(2);
        let mut large = nat(32);
        for e in testkit::shuffled_unique_entries(4000, 17) {
            small.insert(e);
            large.insert(e);
        }
        small.validate().unwrap();
        large.validate().unwrap();
        assert!(
            small.directory_size() > large.directory_size() * 4,
            "small {} vs large {}",
            small.directory_size(),
            large.directory_size()
        );
    }

    #[test]
    fn delete_and_research() {
        let mut h = nat(8);
        for k in 0..500u64 {
            h.insert(k);
        }
        for k in (0..500u64).step_by(3) {
            assert_eq!(h.delete(&k), Some(k));
        }
        h.validate().unwrap();
        for k in 0..500u64 {
            assert_eq!(h.search(&k).is_some(), k % 3 != 0);
        }
    }

    #[test]
    fn extreme_duplication_overflows_gracefully() {
        let mut h = ExtendibleHash::new(DupAdapter, 2);
        // 500 entries with the same key — unsplittable; the directory must
        // NOT blow up chasing them.
        for low in 0..500u64 {
            h.insert((1 << 16) | low);
        }
        h.validate().unwrap();
        let mut out = Vec::new();
        h.search_all(&1, &mut out);
        assert_eq!(out.len(), 500);
        assert!(
            h.directory_size() <= 8,
            "directory should stay small under pure duplication: {}",
            h.directory_size()
        );
    }

    #[test]
    fn insert_unique() {
        let mut h = ExtendibleHash::new(DupAdapter, 4);
        h.insert_unique((7 << 16) | 1).unwrap();
        assert_eq!(
            h.insert_unique((7 << 16) | 9),
            Err(IndexError::DuplicateKey)
        );
    }

    #[test]
    fn differential_vs_model() {
        for cap in [1usize, 2, 8, 32] {
            let mut h = ExtendibleHash::new(DupAdapter, cap);
            testkit::unordered_differential(DupAdapter, &mut h, 0xE87 + cap as u64, 5000, 300);
        }
    }

    #[cfg(feature = "stats")]
    #[test]
    fn search_cost_constant() {
        let mut h = nat(16);
        for e in testkit::shuffled_unique_entries(30_000, 2) {
            h.insert(e >> 16);
        }
        h.reset_stats();
        for k in (0..30_000u64).step_by(100) {
            assert!(h.search(&k).is_some());
        }
        let per = h.stats().comparisons as f64 / 300.0;
        assert!(per < 16.0, "per-search comparisons {per} (≤ bucket size)");
    }

    #[test]
    fn scan_complete() {
        let mut h = nat(4);
        for k in 0..300u64 {
            h.insert(k);
        }
        let mut seen = Vec::new();
        h.scan(&mut |e| seen.push(*e));
        seen.sort_unstable();
        assert_eq!(seen, (0..300).collect::<Vec<u64>>());
    }
}
