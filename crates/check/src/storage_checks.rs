//! Relation/partition reconciliation and temp-list descriptor validity.
//!
//! The paper's query processor hands tuple ids around by value (temp
//! lists §3.1) and trusts them to stay resolvable; these checks make that
//! trust explicit: every live tuple id must resolve, partition live
//! counts must sum to the relation's `len()`, and every temp-list result
//! descriptor must reference columns that actually exist in its sources.

use crate::report::Report;
use mmdb_storage::{Relation, ResultDescriptor, TempList};
use std::collections::HashSet;

/// Reconcile a relation against its own partitions: `len()` equals the
/// sum of per-partition live counts, and every advertised tuple id
/// resolves to a live slot exactly once.
#[must_use]
pub fn check_relation(rel: &Relation) -> Report {
    let mut report = Report::new();
    let s = "relation";
    let live_sum: usize = rel.partition_views().map(|v| v.live()).sum();
    if live_sum != rel.len() {
        report.fail(
            s,
            rel.name().to_string(),
            "count-reconcile",
            format!(
                "len() = {} but partitions hold {live_sum} live tuples",
                rel.len()
            ),
        );
    }
    let mut seen = HashSet::new();
    for tid in rel.iter_tids() {
        if !seen.insert(tid) {
            report.fail(
                s,
                format!("{} tuple {tid:?}", rel.name()),
                "tuple-unique",
                "tuple id advertised more than once".to_string(),
            );
        }
        if let Err(e) = rel.resolve(tid) {
            report.fail(
                s,
                format!("{} tuple {tid:?}", rel.name()),
                "tuple-live",
                format!("advertised tuple does not resolve: {e}"),
            );
        }
    }
    if seen.len() != rel.len() {
        report.fail(
            s,
            rel.name().to_string(),
            "count-reconcile",
            format!(
                "len() = {} but {} distinct tuple ids advertised",
                rel.len(),
                seen.len()
            ),
        );
    }
    report
}

/// Validate a temp list against its result descriptor and source
/// relations: every output field names a real source and a real
/// attribute, and every row's tuple ids resolve to live tuples in the
/// corresponding sources.
#[must_use]
pub fn check_templist(list: &TempList, desc: &ResultDescriptor, sources: &[&Relation]) -> Report {
    let mut report = Report::new();
    let s = "templist";
    for (i, f) in desc.fields().iter().enumerate() {
        if f.source >= list.arity() || f.source >= sources.len() {
            report.fail(
                s,
                format!("field {i} ({})", f.name),
                "descriptor-source",
                format!(
                    "source {} out of range (arity {}, {} sources)",
                    f.source,
                    list.arity(),
                    sources.len()
                ),
            );
            continue;
        }
        let schema = sources[f.source].schema();
        if f.attr >= schema.arity() {
            report.fail(
                s,
                format!("field {i} ({})", f.name),
                "descriptor-attr",
                format!(
                    "attribute {} out of range for {} (arity {})",
                    f.attr,
                    sources[f.source].name(),
                    schema.arity()
                ),
            );
        }
    }
    if list.arity() > sources.len() {
        report.fail(
            s,
            "rows".to_string(),
            "descriptor-source",
            format!(
                "row arity {} exceeds {} sources",
                list.arity(),
                sources.len()
            ),
        );
        return report;
    }
    for (r, row) in list.iter().enumerate() {
        for (col, (&tid, rel)) in row.iter().zip(sources).enumerate() {
            if rel.resolve(tid).is_err() {
                report.fail(
                    s,
                    format!("row {r} column {col}"),
                    "tuple-live",
                    format!("tuple {tid:?} is not live in {}", rel.name()),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_storage::{AttrType, Attribute, OutputField, OwnedValue, Schema};

    fn rel(rows: i64) -> Relation {
        let schema = Schema::new(vec![
            Attribute::new("k", AttrType::Int),
            Attribute::new("v", AttrType::Int),
        ]);
        let mut r = Relation::with_default_config("t", schema);
        for k in 0..rows {
            r.insert(&[OwnedValue::Int(k), OwnedValue::Int(-k)])
                .unwrap();
        }
        r
    }

    #[test]
    fn clean_relation_and_templist_pass() {
        let r = rel(64);
        check_relation(&r).assert_ok();
        let mut list = TempList::new(1);
        for tid in r.iter_tids().take(8) {
            list.push(&[tid]).unwrap();
        }
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "v")]);
        check_templist(&list, &desc, &[&r]).assert_ok();
    }

    #[test]
    fn dangling_row_and_bad_descriptor_are_rejected() {
        let mut r = rel(8);
        let mut list = TempList::new(1);
        let victim = r.iter_tids().next().unwrap();
        list.push(&[victim]).unwrap();
        r.delete(victim).unwrap();
        let desc = ResultDescriptor::new(vec![
            OutputField::new(0, 9, "bad-attr"),
            OutputField::new(3, 0, "bad-source"),
        ]);
        let report = check_templist(&list, &desc, &[&r]);
        let msg = report.into_result().unwrap_err();
        assert!(msg.contains("descriptor-attr"), "{msg}");
        assert!(msg.contains("descriptor-source"), "{msg}");
        assert!(msg.contains("tuple-live"), "{msg}");
    }
}
