//! Plan invariant validation: does a logical plan resolve, does a
//! physical plan respect its catalog's index availability, and does the
//! physical plan implement exactly the logical plan's semantics?
//!
//! [`mmdb_core`'s] `QueryBuilder::run` routes every query through
//! [`check_plans`] when built with `--features check`, so a planner
//! regression (dropped filter, duplicated join, infeasible method)
//! surfaces as a named invariant violation instead of a wrong answer.

use crate::report::Report;
use mmdb_exec::plan::{LogicalPlan, PlanCatalog, PlanNode, PlanNodeKind, PlannedQuery};
use mmdb_exec::{CachedMode, JoinMethod, Predicate, SelectPath};
use mmdb_storage::KeyValue;
use std::ops::Bound;

const STRUCTURE: &str = "query plan";

/// Independent interval-containment judgement for subsumed cached serves:
/// does every value satisfying `inner` also satisfy `outer`? Deliberately
/// re-derived from the predicate bounds rather than delegating to the
/// cache's own lattice function, so a bug there is caught here.
fn pred_interval_contains(outer: &Predicate, inner: &Predicate) -> bool {
    fn bounds(p: &Predicate) -> (Bound<&KeyValue>, Bound<&KeyValue>) {
        match p {
            Predicate::Eq(k) => (Bound::Included(k), Bound::Included(k)),
            Predicate::Range { lo, hi } => (lo.as_ref(), hi.as_ref()),
        }
    }
    fn le(a: &KeyValue, b: &KeyValue, or_equal: bool) -> Option<bool> {
        let ord = match (a, b) {
            (KeyValue::Int(x), KeyValue::Int(y)) => x.cmp(y),
            (KeyValue::Str(x), KeyValue::Str(y)) => x.cmp(y),
            (KeyValue::Ptr(x), KeyValue::Ptr(y)) => x.cmp(y),
            _ => return None,
        };
        Some(if or_equal { ord.is_le() } else { ord.is_lt() })
    }
    let (olo, ohi) = bounds(outer);
    let (ilo, ihi) = bounds(inner);
    let lo_ok = match (olo, ilo) {
        (Bound::Unbounded, _) => Some(true),
        (_, Bound::Unbounded) => Some(false),
        (Bound::Included(a), Bound::Included(b) | Bound::Excluded(b)) => le(a, b, true),
        (Bound::Excluded(a), Bound::Included(b)) => le(a, b, false),
        (Bound::Excluded(a), Bound::Excluded(b)) => le(a, b, true),
    };
    let hi_ok = match (ohi, ihi) {
        (Bound::Unbounded, _) => Some(true),
        (_, Bound::Unbounded) => Some(false),
        (Bound::Included(a), Bound::Included(b) | Bound::Excluded(b)) => le(b, a, true),
        (Bound::Excluded(a), Bound::Included(b)) => le(b, a, false),
        (Bound::Excluded(a), Bound::Excluded(b)) => le(b, a, true),
    };
    lo_ok == Some(true) && hi_ok == Some(true)
}

/// Check that every reference in a logical plan resolves against the
/// catalog and respects written-order binding.
#[must_use]
pub fn check_logical(logical: &LogicalPlan, catalog: &dyn PlanCatalog) -> Report {
    let mut report = Report::new();
    let bound = logical.bound_tables();
    for t in &bound {
        if catalog.cardinality(t).is_none() {
            report.fail(
                STRUCTURE,
                format!("logical table {t}"),
                "every bound table exists in the catalog",
                "cardinality() returned None".to_string(),
            );
        }
    }
    for (t, a, _) in logical.filters() {
        if !bound.iter().any(|b| b == t) {
            report.fail(
                STRUCTURE,
                format!("logical filter {t}.{a}"),
                "filters reference bound tables",
                format!("table {t} is not in the pipeline"),
            );
        }
        if catalog.resolve_attr(t, a).is_none() {
            report.fail(
                STRUCTURE,
                format!("logical filter {t}.{a}"),
                "filtered attributes resolve",
                "resolve_attr() returned None".to_string(),
            );
        }
    }
    for (src, oa, inner, ia) in logical.joins() {
        for (t, a) in [(src, oa), (inner, ia)] {
            if catalog.resolve_attr(t, a).is_none() {
                report.fail(
                    STRUCTURE,
                    format!("logical join {src}.{oa} = {inner}.{ia}"),
                    "join attributes resolve",
                    format!("{t}.{a} did not resolve"),
                );
            }
        }
    }
    if let Some(cols) = logical.projection() {
        for (t, a) in cols {
            if !bound.iter().any(|b| b == t) {
                report.fail(
                    STRUCTURE,
                    format!("projection {t}.{a}"),
                    "projected tables are bound",
                    format!("table {t} is not in the pipeline"),
                );
            } else if catalog.resolve_attr(t, a).is_none() {
                report.fail(
                    STRUCTURE,
                    format!("projection {t}.{a}"),
                    "projected attributes resolve",
                    "resolve_attr() returned None".to_string(),
                );
            }
        }
    }
    report
}

/// Check a physical plan in isolation: pre-order contiguous ids, sane
/// estimates, temp-list column discipline, and that every chosen access
/// path and join method is actually feasible under the catalog's index
/// availability.
#[must_use]
pub fn check_physical(planned: &PlannedQuery, catalog: &dyn PlanCatalog) -> Report {
    let mut report = Report::new();

    // Ids must be assigned pre-order and cover 0..node_count exactly.
    let mut ids = Vec::new();
    collect_ids(&planned.root, &mut ids);
    if ids.len() != planned.node_count || ids.iter().enumerate().any(|(i, id)| i != *id) {
        report.fail(
            STRUCTURE,
            "physical tree".to_string(),
            "node ids are pre-order contiguous from the root",
            format!(
                "ids in pre-order: {ids:?}, node_count {}",
                planned.node_count
            ),
        );
    }

    if planned.tables.is_empty() {
        report.fail(
            STRUCTURE,
            "physical tree".to_string(),
            "at least the base table is bound",
            "tables list is empty".to_string(),
        );
    }
    for t in &planned.tables {
        if catalog.cardinality(t).is_none() {
            report.fail(
                STRUCTURE,
                format!("bound table {t}"),
                "every bound table exists in the catalog",
                "cardinality() returned None".to_string(),
            );
        }
    }

    walk_physical(&planned.root, planned, catalog, &mut report);
    report
}

/// Cross-check: the physical plan implements exactly the logical plan —
/// same base, same table set, every join and filter exactly once, same
/// projection and distinct semantics. Runs [`check_logical`] and
/// [`check_physical`] first and merges their findings.
#[must_use]
pub fn check_plans(
    logical: &LogicalPlan,
    planned: &PlannedQuery,
    catalog: &dyn PlanCatalog,
) -> Report {
    let mut report = check_logical(logical, catalog);
    report.merge(check_physical(planned, catalog));

    if planned.tables.first().map(String::as_str) != Some(logical.base()) {
        report.fail(
            STRUCTURE,
            "binding order".to_string(),
            "the base table binds temp-list column 0",
            format!(
                "logical base {}, physical tables {:?}",
                logical.base(),
                planned.tables
            ),
        );
    }
    let mut logical_tables = logical.bound_tables();
    let mut physical_tables = planned.tables.clone();
    logical_tables.sort();
    physical_tables.sort();
    if logical_tables != physical_tables {
        report.fail(
            STRUCTURE,
            "binding order".to_string(),
            "physical binds exactly the logical table set",
            format!("logical {logical_tables:?}, physical {physical_tables:?}"),
        );
    }

    // Every logical join appears exactly once, attributes intact
    // (reordering may permute them, never drop or duplicate).
    let mut phys_joins = Vec::new();
    collect_joins(&planned.root, &mut phys_joins);
    for (src, oa, inner, ia) in logical.joins() {
        let n = phys_joins
            .iter()
            .filter(|(s, o, i, a)| *s == src && *o == oa && *i == inner && *a == ia)
            .count();
        if n != 1 {
            report.fail(
                STRUCTURE,
                format!("join {src}.{oa} = {inner}.{ia}"),
                "each logical join appears exactly once in the physical plan",
                format!("found {n} physical occurrences"),
            );
        }
    }
    if phys_joins.len() != logical.joins().len() {
        report.fail(
            STRUCTURE,
            "physical joins".to_string(),
            "the physical plan invents no joins",
            format!(
                "logical has {}, physical has {}",
                logical.joins().len(),
                phys_joins.len()
            ),
        );
    }

    // Every logical filter survives as exactly one Select or PostFilter.
    let mut phys_filters = Vec::new();
    collect_filters(&planned.root, &mut phys_filters);
    for (t, a, pred) in logical.filters() {
        let n = phys_filters
            .iter()
            .filter(|(pt, pa, pp)| *pt == t && *pa == a && format!("{pp}") == format!("{pred}"))
            .count();
        if n != 1 {
            report.fail(
                STRUCTURE,
                format!("filter {t}.{a}"),
                "each logical filter appears exactly once in the physical plan",
                format!("found {n} physical occurrences"),
            );
        }
    }
    if phys_filters.len() != logical.filters().len() {
        report.fail(
            STRUCTURE,
            "physical filters".to_string(),
            "the physical plan invents no filters",
            format!(
                "logical has {}, physical has {}",
                logical.filters().len(),
                phys_filters.len()
            ),
        );
    }

    if planned.distinct != logical.is_distinct() {
        report.fail(
            STRUCTURE,
            "distinct".to_string(),
            "physical distinct flag matches the logical plan",
            format!(
                "logical {}, physical {}",
                logical.is_distinct(),
                planned.distinct
            ),
        );
    }
    if let Some(cols) = logical.projection() {
        if planned.columns != cols {
            report.fail(
                STRUCTURE,
                "projection".to_string(),
                "physical output columns match the logical projection",
                format!("logical {cols:?}, physical {:?}", planned.columns),
            );
        }
    }
    report
}

fn collect_ids(node: &PlanNode, out: &mut Vec<usize>) {
    out.push(node.id);
    for c in &node.children {
        collect_ids(c, out);
    }
}

fn collect_joins<'p>(node: &'p PlanNode, out: &mut Vec<(&'p str, &'p str, &'p str, &'p str)>) {
    match &node.kind {
        PlanNodeKind::Join {
            source_table,
            outer_attr,
            inner_table,
            inner_attr,
            ..
        } => out.push((source_table, outer_attr, inner_table, inner_attr)),
        // A cache hit still *implements* the joins it absorbed.
        PlanNodeKind::Cached { joins, .. } => {
            for (s, o, i, a) in joins {
                out.push((s, o, i, a));
            }
        }
        _ => {}
    }
    for c in &node.children {
        collect_joins(c, out);
    }
}

fn collect_filters<'p>(node: &'p PlanNode, out: &mut Vec<(&'p str, &'p str, &'p Predicate)>) {
    match &node.kind {
        PlanNodeKind::Select {
            table, attr, pred, ..
        }
        | PlanNodeKind::PostFilter {
            table, attr, pred, ..
        } => out.push((table, attr, pred)),
        // A cache hit still *implements* the filters it absorbed.
        PlanNodeKind::Cached { filters, .. } => {
            for (t, a, p) in filters {
                out.push((t, a, p));
            }
        }
        _ => {}
    }
    for c in &node.children {
        collect_filters(c, out);
    }
}

#[allow(clippy::too_many_lines)]
fn walk_physical(
    node: &PlanNode,
    planned: &PlannedQuery,
    catalog: &dyn PlanCatalog,
    report: &mut Report,
) {
    let loc = |what: &str| format!("node {} ({what})", node.id);
    if !node.est_rows.is_finite()
        || node.est_rows < 0.0
        || !node.est_comparisons.is_finite()
        || node.est_comparisons < 0.0
    {
        report.fail(
            STRUCTURE,
            loc("estimates"),
            "estimates are finite and non-negative",
            format!(
                "est_rows {}, est_comparisons {}",
                node.est_rows, node.est_comparisons
            ),
        );
    }
    match &node.kind {
        PlanNodeKind::Scan { table } => {
            if !node.children.is_empty() {
                report.fail(
                    STRUCTURE,
                    loc("scan"),
                    "scans are leaves",
                    format!("{} children", node.children.len()),
                );
            }
            if !planned.tables.iter().any(|t| t == table) {
                report.fail(
                    STRUCTURE,
                    loc("scan"),
                    "scanned tables are bound",
                    format!("table {table} missing from {:?}", planned.tables),
                );
            }
        }
        PlanNodeKind::Select {
            table,
            attr,
            pred,
            path,
        } => {
            if !node.children.is_empty() {
                report.fail(
                    STRUCTURE,
                    loc("select"),
                    "selects are leaves",
                    format!("{} children", node.children.len()),
                );
            }
            match catalog.resolve_attr(table, attr) {
                None => report.fail(
                    STRUCTURE,
                    loc("select"),
                    "selected attributes resolve",
                    format!("{table}.{attr} did not resolve"),
                ),
                Some(info) => {
                    let feasible = match path {
                        SelectPath::HashLookup => {
                            info.avail.hash && matches!(pred, Predicate::Eq(_))
                        }
                        SelectPath::TreeLookup => info.avail.ttree,
                        SelectPath::SequentialScan => true,
                    };
                    if !feasible {
                        report.fail(
                            STRUCTURE,
                            loc("select"),
                            "the chosen access path is feasible",
                            format!(
                                "{path:?} over {table}.{attr} (hash {}, ttree {}, pred {pred})",
                                info.avail.hash, info.avail.ttree
                            ),
                        );
                    }
                }
            }
        }
        PlanNodeKind::PostFilter {
            table,
            attr,
            src_col,
            ..
        } => {
            if node.children.len() != 1 {
                report.fail(
                    STRUCTURE,
                    loc("post-filter"),
                    "post-filters have exactly one input",
                    format!("{} children", node.children.len()),
                );
            }
            if planned.tables.get(*src_col).map(String::as_str) != Some(table.as_str()) {
                report.fail(
                    STRUCTURE,
                    loc("post-filter"),
                    "src_col addresses the filtered table's temp-list column",
                    format!("src_col {src_col} vs tables {:?}", planned.tables),
                );
            }
            if catalog.resolve_attr(table, attr).is_none() {
                report.fail(
                    STRUCTURE,
                    loc("post-filter"),
                    "filtered attributes resolve",
                    format!("{table}.{attr} did not resolve"),
                );
            }
        }
        PlanNodeKind::Join {
            method,
            source_table,
            outer_attr,
            inner_table,
            inner_attr,
            src_col,
            ..
        } => {
            if planned.tables.get(*src_col).map(String::as_str) != Some(source_table.as_str()) {
                report.fail(
                    STRUCTURE,
                    loc("join"),
                    "src_col addresses the join source's temp-list column",
                    format!("src_col {src_col} vs tables {:?}", planned.tables),
                );
            }
            // Tid-consuming methods materialise the inner side as a
            // second child; index/pointer methods must not.
            let wants_inner = matches!(
                method,
                JoinMethod::HashJoin | JoinMethod::SortMerge | JoinMethod::NestedLoops
            );
            let expect = if wants_inner { 2 } else { 1 };
            if node.children.len() != expect {
                report.fail(
                    STRUCTURE,
                    loc("join"),
                    "join arity matches its method's inner-access shape",
                    format!("{method:?} has {} children", node.children.len()),
                );
            }
            let outer = catalog.resolve_attr(source_table, outer_attr);
            let inner = catalog.resolve_attr(inner_table, inner_attr);
            match (outer, inner) {
                (Some(o), Some(i)) => {
                    let feasible = match method {
                        JoinMethod::Precomputed => o.pointer,
                        JoinMethod::TreeMerge => o.avail.ttree && i.avail.ttree,
                        JoinMethod::TreeJoin => i.avail.ttree,
                        JoinMethod::HashJoin | JoinMethod::SortMerge | JoinMethod::NestedLoops => {
                            true
                        }
                    };
                    if !feasible {
                        report.fail(
                            STRUCTURE,
                            loc("join"),
                            "the chosen join method is feasible under index availability",
                            format!(
                                "{method:?} on {source_table}.{outer_attr} = \
                                 {inner_table}.{inner_attr}"
                            ),
                        );
                    }
                }
                _ => report.fail(
                    STRUCTURE,
                    loc("join"),
                    "join attributes resolve",
                    format!("{source_table}.{outer_attr} = {inner_table}.{inner_attr}"),
                ),
            }
        }
        PlanNodeKind::Project { cols } => {
            if node.children.len() != 1 {
                report.fail(
                    STRUCTURE,
                    loc("project"),
                    "projections have exactly one input",
                    format!("{} children", node.children.len()),
                );
            }
            if *cols != planned.columns {
                report.fail(
                    STRUCTURE,
                    loc("project"),
                    "the projection node carries the plan's output columns",
                    format!("node {cols:?}, plan {:?}", planned.columns),
                );
            }
            for (t, a) in cols {
                if !planned.tables.iter().any(|b| b == t) {
                    report.fail(
                        STRUCTURE,
                        loc("project"),
                        "projected tables are bound",
                        format!("table {t} missing from {:?}", planned.tables),
                    );
                } else if catalog.resolve_attr(t, a).is_none() {
                    report.fail(
                        STRUCTURE,
                        loc("project"),
                        "projected attributes resolve",
                        format!("{t}.{a} did not resolve"),
                    );
                }
            }
        }
        PlanNodeKind::Distinct => {
            if node.children.len() != 1 {
                report.fail(
                    STRUCTURE,
                    loc("distinct"),
                    "distinct has exactly one input",
                    format!("{} children", node.children.len()),
                );
            }
            if !planned.distinct {
                report.fail(
                    STRUCTURE,
                    loc("distinct"),
                    "a distinct node implies the plan's distinct flag",
                    "planned.distinct is false".to_string(),
                );
            }
        }
        PlanNodeKind::Cached {
            fingerprint,
            canonical,
            tables,
            filters,
            mode,
            ..
        } => {
            if !node.children.is_empty() {
                report.fail(
                    STRUCTURE,
                    loc("cached"),
                    "cached reads are leaves",
                    format!("{} children", node.children.len()),
                );
            }
            if *fingerprint != mmdb_exec::cache::fingerprint(canonical) {
                report.fail(
                    STRUCTURE,
                    loc("cached"),
                    "the fingerprint re-derives from the canonical form",
                    format!("node fp {fingerprint:#x} vs canonical {canonical:?}"),
                );
            }
            if tables.is_empty() {
                report.fail(
                    STRUCTURE,
                    loc("cached"),
                    "a cached read covers at least one table",
                    "tables list is empty".to_string(),
                );
            }
            for t in tables {
                if !planned.tables.iter().any(|b| b == t) {
                    report.fail(
                        STRUCTURE,
                        loc("cached"),
                        "cached tables are bound",
                        format!("table {t} missing from {:?}", planned.tables),
                    );
                }
            }
            match mode {
                CachedMode::Exact => {}
                CachedMode::Subsumed {
                    entry_fingerprint,
                    entry_canonical,
                    entry_pred,
                } => {
                    if *entry_fingerprint != mmdb_exec::cache::fingerprint(entry_canonical) {
                        report.fail(
                            STRUCTURE,
                            loc("cached-subsumed"),
                            "the subsuming entry's fingerprint re-derives from its canonical form",
                            format!(
                                "entry fp {entry_fingerprint:#x} vs canonical {entry_canonical:?}"
                            ),
                        );
                    }
                    // The served rows are a re-filter of the wider
                    // entry, so the node's residual predicate interval
                    // must lie inside the entry's — judged by an
                    // independent containment test, not the cache's own
                    // lattice function.
                    match filters.as_slice() {
                        [(_, _, residual)] => {
                            if !pred_interval_contains(entry_pred, residual) {
                                report.fail(
                                    STRUCTURE,
                                    loc("cached-subsumed"),
                                    "the subsuming entry's interval contains the query's",
                                    format!("entry ({entry_pred}) vs query ({residual})"),
                                );
                            }
                        }
                        other => report.fail(
                            STRUCTURE,
                            loc("cached-subsumed"),
                            "a subsumed serve absorbs exactly one filter (its own selection)",
                            format!("{} absorbed filters", other.len()),
                        ),
                    }
                }
                CachedMode::Delta { pending } => {
                    if *pending == 0 || *pending > mmdb_exec::DELTA_BUDGET {
                        report.fail(
                            STRUCTURE,
                            loc("cached-delta"),
                            "a delta serve patches a nonempty, within-budget chain",
                            format!("pending = {pending}"),
                        );
                    }
                    if filters.len() != 1 {
                        report.fail(
                            STRUCTURE,
                            loc("cached-delta"),
                            "a delta serve absorbs exactly one filter (its own selection)",
                            format!("{} absorbed filters", filters.len()),
                        );
                    }
                }
            }
        }
    }
    for c in &node.children {
        walk_physical(c, planned, catalog, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_exec::plan::{MemCatalog, Planner, PlannerOptions};

    fn catalog() -> MemCatalog {
        let mut cat = MemCatalog::new();
        cat.table("emp", 1000, &["ename", "age", "dept_id"])
            .with_ttree("emp", "age")
            .with_ttree("emp", "dept_id");
        cat.table("dept", 30, &["dname", "id"])
            .with_ttree("dept", "id");
        cat
    }

    fn workload() -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join {
                input: Box::new(LogicalPlan::Filter {
                    input: Box::new(LogicalPlan::Scan {
                        table: "emp".to_string(),
                    }),
                    table: "emp".to_string(),
                    attr: "age".to_string(),
                    pred: Predicate::greater(65i64.into()),
                }),
                source_table: "emp".to_string(),
                outer_attr: "dept_id".to_string(),
                inner_table: "dept".to_string(),
                inner_attr: "id".to_string(),
            }),
            cols: vec![("emp".to_string(), "ename".to_string())],
        }
    }

    #[test]
    fn planner_output_passes_all_checks() {
        let cat = catalog();
        let logical = workload();
        for options in [
            PlannerOptions::default(),
            PlannerOptions::naive(),
            PlannerOptions {
                forced_join: Some(JoinMethod::HashJoin),
                ..PlannerOptions::default()
            },
        ] {
            let planned = Planner::plan(&logical, &cat, &options).unwrap();
            let report = check_plans(&logical, &planned, &cat);
            assert!(report.is_ok(), "{:?}", report.into_result());
        }
    }

    #[test]
    fn tampered_plans_are_caught() {
        let cat = catalog();
        let logical = workload();
        let planned = Planner::plan(&logical, &cat, &PlannerOptions::default()).unwrap();

        // Dropping the filter breaks filter preservation.
        let mut no_filter = planned.clone();
        fn strip_filters(n: &mut PlanNode) {
            if let PlanNodeKind::Select { table, .. } = &n.kind {
                n.kind = PlanNodeKind::Scan {
                    table: table.clone(),
                };
            }
            for c in &mut n.children {
                strip_filters(c);
            }
        }
        strip_filters(&mut no_filter.root);
        assert!(!check_plans(&logical, &no_filter, &cat).is_ok());

        // An infeasible method (TreeMerge without both trees, since the
        // outer side is filtered) is caught by the physical check.
        let mut bad_method = planned.clone();
        fn force_tree_merge(n: &mut PlanNode) {
            if let PlanNodeKind::Join { method, .. } = &mut n.kind {
                *method = JoinMethod::Precomputed; // dept_id is not a pointer
            }
            for c in &mut n.children {
                force_tree_merge(c);
            }
        }
        force_tree_merge(&mut bad_method.root);
        assert!(!check_physical(&bad_method, &cat).is_ok());

        // Scrambled ids break the pre-order invariant.
        let mut bad_ids = planned;
        bad_ids.root.id = 7;
        assert!(!check_physical(&bad_ids, &cat).is_ok());

        // A projection of an unbound table fails the logical check.
        let bad_logical = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Scan {
                table: "emp".to_string(),
            }),
            cols: vec![("dept".to_string(), "dname".to_string())],
        };
        assert!(!check_logical(&bad_logical, &cat).is_ok());
    }

    /// Swap the `emp.age > 65` select leaf for a cached serve in `mode`.
    fn cache_the_select(n: &mut PlanNode, mode: &CachedMode) {
        if let PlanNodeKind::Select {
            table, attr, pred, ..
        } = &n.kind
        {
            let canonical = format!("sel({table}.{attr} {pred})");
            n.kind = PlanNodeKind::Cached {
                fingerprint: mmdb_exec::cache::fingerprint(&canonical),
                canonical,
                tables: vec![table.clone()],
                filters: vec![(table.clone(), attr.clone(), pred.clone())],
                joins: Vec::new(),
                mode: mode.clone(),
            };
            n.children.clear();
        }
        for c in &mut n.children {
            cache_the_select(c, mode);
        }
    }

    fn subsumed_mode(entry_pred: Predicate) -> CachedMode {
        let entry_canonical = format!("sel(emp.age {entry_pred})");
        CachedMode::Subsumed {
            entry_fingerprint: mmdb_exec::cache::fingerprint(&entry_canonical),
            entry_canonical,
            entry_pred,
        }
    }

    #[test]
    fn honest_subsumed_and_delta_serves_pass() {
        let cat = catalog();
        let logical = workload();
        let planned = Planner::plan(&logical, &cat, &PlannerOptions::default()).unwrap();

        // Entry `age > 60` genuinely contains the residual `age > 65`.
        let mut subsumed = planned.clone();
        cache_the_select(
            &mut subsumed.root,
            &subsumed_mode(Predicate::greater(60i64.into())),
        );
        let report = check_plans(&logical, &subsumed, &cat);
        assert!(report.is_ok(), "{:?}", report.into_result());

        let mut delta = planned;
        cache_the_select(&mut delta.root, &CachedMode::Delta { pending: 3 });
        let report = check_plans(&logical, &delta, &cat);
        assert!(report.is_ok(), "{:?}", report.into_result());
    }

    #[test]
    fn tampered_cached_modes_are_caught() {
        let cat = catalog();
        let logical = workload();
        let planned = Planner::plan(&logical, &cat, &PlannerOptions::default()).unwrap();

        // Entry `age > 80` is NARROWER than the residual `age > 65`:
        // re-filtering it would silently drop rows in (65, 80].
        let mut narrow_entry = planned.clone();
        cache_the_select(
            &mut narrow_entry.root,
            &subsumed_mode(Predicate::greater(80i64.into())),
        );
        let result = check_plans(&logical, &narrow_entry, &cat).into_result();
        let msg = result.expect_err("narrower entry must be rejected");
        assert!(msg.contains("contains the query's"), "{msg}");

        // An entry fingerprint that does not re-derive from its
        // canonical form is a forged pairing.
        let mut forged = planned.clone();
        cache_the_select(
            &mut forged.root,
            &CachedMode::Subsumed {
                entry_fingerprint: 0xdead_beef,
                entry_canonical: "sel(emp.age > 60)".to_string(),
                entry_pred: Predicate::greater(60i64.into()),
            },
        );
        assert!(!check_physical(&forged, &cat).is_ok());

        // A delta serve with an empty (or over-budget) chain is bogus:
        // the planner would have served it as an exact hit instead.
        let mut empty_chain = planned;
        cache_the_select(&mut empty_chain.root, &CachedMode::Delta { pending: 0 });
        assert!(!check_physical(&empty_chain, &cat).is_ok());
    }
}
