//! Deep structural validators for all eight index structures (§3.2).
//!
//! Unlike each structure's own `validate()` (which the structure could get
//! wrong in exactly the way its operations do), these checkers re-derive
//! every invariant *externally* from raw arena/directory snapshots
//! ([`mmdb_index::raw`]) and report precise diagnostics: structure, node
//! id, violated invariant, observed vs. expected.
//!
//! | structure | invariants |
//! |-----------|------------|
//! | T-Tree | key order (in-node + global), balance ≤ 1, stored heights, parent links, max occupancy, internal min occupancy with boundary exemption |
//! | AVL | BST order, balance ≤ 1, stored heights, parent links |
//! | B-Tree | N/N+1 child arity, interior-data ordering, uniform leaf depth, min/max occupancy |
//! | Array | dense sortedness, gap accounting (capacity ≥ len, no holes) |
//! | Chained hash | chain acyclicity, home-bucket addressing, count reconcile |
//! | Extendible hash | directory size = 2^g, slot/pattern coverage, local ≤ global depth, entry patterns |
//! | Linear hash | table size = base + split, split-pointer addressing, count reconcile |
//! | Modified linear | directory size = base + split, chain acyclicity, split-pointer addressing |

use crate::report::Report;
use mmdb_index::adapter::{Adapter, HashAdapter};
use mmdb_index::raw::{BTreeNodeView, TreeNodeView};
use mmdb_index::traits::{OrderedIndex, UnorderedIndex};
use mmdb_index::{
    ArrayIndex, AvlTree, BTree, ChainedBucketHash, ExtendibleHash, LinearHash, ModifiedLinearHash,
    TTree,
};
use std::cmp::Ordering;
use std::collections::HashMap;

/// Uniform entry point: every index structure can be deep-checked.
pub trait DeepCheck {
    /// Re-derive every structural invariant; returns a clean report or the
    /// full list of violations.
    fn deep_check(&self) -> Report;
}

/// First adjacent out-of-order pair in `entries`, if any.
fn first_unsorted<A: Adapter>(adapter: &A, entries: &[A::Entry]) -> Option<usize> {
    entries
        .windows(2)
        .position(|w| adapter.cmp_entries(&w[0], &w[1]) == Ordering::Greater)
}

/// Index tree views by node id, reporting duplicate ids (a share or cycle
/// in the child pointers).
fn tree_map<E: Clone>(
    structure: &str,
    views: &[TreeNodeView<E>],
    report: &mut Report,
) -> HashMap<u32, TreeNodeView<E>> {
    let mut map = HashMap::new();
    for v in views {
        if map.insert(v.id, v.clone()).is_some() {
            report.fail(
                structure,
                format!("node {}", v.id),
                "tree-shape",
                "node reachable through two parents (shared child or cycle)".to_string(),
            );
        }
    }
    map
}

/// Shared binary-tree walk: parent links, heights, balance, in-order key
/// order across nodes. Returns nodes in in-order sequence.
fn check_binary_tree<A: Adapter>(
    structure: &str,
    adapter: &A,
    root: Option<u32>,
    map: &HashMap<u32, TreeNodeView<A::Entry>>,
    report: &mut Report,
) -> Vec<u32> {
    let Some(root) = root else {
        return Vec::new();
    };
    // Parent links.
    for (id, v) in map {
        for (side, child) in [("left", v.left), ("right", v.right)] {
            if let Some(c) = child {
                match map.get(&c) {
                    None => report.fail(
                        structure,
                        format!("node {id}"),
                        "tree-shape",
                        format!("{side} child {c} is not a live node"),
                    ),
                    Some(cv) if cv.parent != Some(*id) => report.fail(
                        structure,
                        format!("node {c}"),
                        "parent-link",
                        format!("parent is {:?}, expected Some({id})", cv.parent),
                    ),
                    _ => {}
                }
            }
        }
    }
    if let Some(rv) = map.get(&root) {
        if rv.parent.is_some() {
            report.fail(
                structure,
                format!("node {root}"),
                "parent-link",
                format!("root has parent {:?}", rv.parent),
            );
        }
    }
    // Heights and balance, bottom-up (iterative post-order to survive
    // corrupted shapes without recursion limits).
    let mut computed: HashMap<u32, i32> = HashMap::new();
    let mut stack = vec![(root, false)];
    let mut guard = 0usize;
    while let Some((id, expanded)) = stack.pop() {
        guard += 1;
        if guard > 4 * (map.len() + 1) {
            break; // cycle; already reported as tree-shape
        }
        let Some(v) = map.get(&id) else { continue };
        if !expanded {
            stack.push((id, true));
            if let Some(l) = v.left {
                stack.push((l, false));
            }
            if let Some(r) = v.right {
                stack.push((r, false));
            }
            continue;
        }
        // Height convention matches the trees: nil = 0, leaf = 1.
        let hl = v.left.and_then(|l| computed.get(&l).copied()).unwrap_or(0);
        let hr = v.right.and_then(|r| computed.get(&r).copied()).unwrap_or(0);
        let h = 1 + hl.max(hr);
        computed.insert(id, h);
        if v.height != h {
            report.fail(
                structure,
                format!("node {id}"),
                "stored-height",
                format!("stored {} computed {h}", v.height),
            );
        }
        if (hl - hr).abs() > 1 {
            report.fail(
                structure,
                format!("node {id}"),
                "balance",
                format!("left height {hl}, right height {hr}"),
            );
        }
    }
    // In-order traversal; check global key order across node boundaries.
    let mut order: Vec<u32> = Vec::new();
    let mut stack: Vec<(u32, bool)> = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if order.len() > map.len() {
            break;
        }
        let Some(v) = map.get(&id) else { continue };
        if expanded {
            order.push(id);
            continue;
        }
        if let Some(r) = v.right {
            stack.push((r, false));
        }
        stack.push((id, true));
        if let Some(l) = v.left {
            stack.push((l, false));
        }
    }
    let mut prev: Option<(u32, A::Entry)> = None;
    for id in &order {
        let v = &map[id];
        if let Some(i) = first_unsorted(adapter, &v.entries) {
            report.fail(
                structure,
                format!("node {id}"),
                "key-order",
                format!("entries {i} and {} out of order within node", i + 1),
            );
        }
        if let (Some((pid, pmax)), Some(first)) = (&prev, v.entries.first()) {
            if adapter.cmp_entries(pmax, first) == Ordering::Greater {
                report.fail(
                    structure,
                    format!("node {id}"),
                    "key-order",
                    format!("node minimum sorts below the maximum of predecessor node {pid}"),
                );
            }
        }
        if let Some(last) = v.entries.last() {
            prev = Some((*id, *last));
        }
    }
    order
}

impl<A: Adapter> DeepCheck for TTree<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "ttree";
        let views = self.raw_nodes();
        let map = tree_map(s, &views, &mut report);
        let order = check_binary_tree(s, self.raw_adapter(), self.raw_root(), &map, &mut report);
        let cfg = self.config();
        let mut total = 0usize;
        for id in &order {
            let v = &map[id];
            total += v.entries.len();
            if v.entries.is_empty() {
                report.fail(
                    s,
                    format!("node {id}"),
                    "node-occupancy-min",
                    "node is empty (every T-Tree node holds at least one element)".to_string(),
                );
                continue;
            }
            if v.entries.len() > cfg.max_count {
                report.fail(
                    s,
                    format!("node {id}"),
                    "node-occupancy-max",
                    format!("{} entries, max_count {}", v.entries.len(), cfg.max_count),
                );
            }
            let internal = v.left.is_some() && v.right.is_some();
            if internal && v.entries.len() < cfg.min_count() {
                // Boundary exemption: refills draw from the greatest lower
                // bound leaf and never empty it, so an internal node may
                // legitimately sit under min_count while its GLB donor has
                // no spare element to give.
                let donor_spare = glb_leaf(&map, v.left).is_some_and(|g| map[&g].entries.len() > 1);
                if donor_spare {
                    report.fail(
                        s,
                        format!("node {id}"),
                        "node-occupancy-min",
                        format!(
                            "internal node holds {} entries, min_count {} (GLB donor has spares)",
                            v.entries.len(),
                            cfg.min_count()
                        ),
                    );
                }
            }
        }
        if total != OrderedIndex::len(self) {
            report.fail(
                s,
                "tree".to_string(),
                "count-reconcile",
                format!("len() = {} but nodes hold {total}", OrderedIndex::len(self)),
            );
        }
        report
    }
}

/// The greatest-lower-bound leaf of a subtree: rightmost node under `left`.
fn glb_leaf<E>(map: &HashMap<u32, TreeNodeView<E>>, left: Option<u32>) -> Option<u32> {
    let mut cur = left?;
    let mut steps = 0usize;
    while let Some(v) = map.get(&cur) {
        match v.right {
            Some(r) if steps <= map.len() => {
                cur = r;
                steps += 1;
            }
            _ => break,
        }
    }
    Some(cur)
}

impl<A: Adapter> DeepCheck for AvlTree<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "avl";
        let views = self.raw_nodes();
        let map = tree_map(s, &views, &mut report);
        let order = check_binary_tree(s, self.raw_adapter(), self.raw_root(), &map, &mut report);
        if order.len() != OrderedIndex::len(self) {
            report.fail(
                s,
                "tree".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but {} nodes are reachable",
                    OrderedIndex::len(self),
                    order.len()
                ),
            );
        }
        report
    }
}

impl<A: Adapter> DeepCheck for BTree<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "btree";
        let views = self.raw_nodes();
        let mut map: HashMap<u32, &BTreeNodeView<A::Entry>> = HashMap::new();
        for v in &views {
            if map.insert(v.id, v).is_some() {
                report.fail(
                    s,
                    format!("node {}", v.id),
                    "tree-shape",
                    "node reachable through two parents".to_string(),
                );
            }
        }
        let Some(root) = self.raw_root() else {
            if OrderedIndex::len(self) != 0 {
                report.fail(
                    s,
                    "tree".to_string(),
                    "count-reconcile",
                    format!(
                        "len() = {} but the tree has no root",
                        OrderedIndex::len(self)
                    ),
                );
            }
            return report;
        };
        let adapter = self.raw_adapter();
        // Depth-first walk carrying depth; record leaf depths; check arity
        // and occupancy per node; flatten an in-order entry sequence.
        let mut leaf_depths: Vec<usize> = Vec::new();
        let mut in_order: Vec<A::Entry> = Vec::new();
        let mut total = 0usize;
        // Explicit stack of (id, depth, next child position, emitted count).
        let mut stack: Vec<(u32, usize, usize)> = vec![(root, 0, 0)];
        let mut guard = 0usize;
        while let Some((id, depth, pos)) = stack.pop() {
            guard += 1;
            if guard > 4 * (views.len() + 2) * (self.raw_max_items() + 2) {
                break;
            }
            let Some(v) = map.get(&id) else {
                report.fail(
                    s,
                    format!("node {id}"),
                    "tree-shape",
                    "child pointer to a non-live node".to_string(),
                );
                continue;
            };
            if pos == 0 {
                // First visit: structural checks.
                total += v.entries.len();
                if !v.children.is_empty() && v.children.len() != v.entries.len() + 1 {
                    report.fail(
                        s,
                        format!("node {id}"),
                        "child-arity",
                        format!(
                            "{} entries but {} children (want N+1 = {})",
                            v.entries.len(),
                            v.children.len(),
                            v.entries.len() + 1
                        ),
                    );
                }
                if v.entries.len() > self.raw_max_items() {
                    report.fail(
                        s,
                        format!("node {id}"),
                        "node-occupancy-max",
                        format!("{} entries, max {}", v.entries.len(), self.raw_max_items()),
                    );
                }
                if id != root && v.entries.len() < self.raw_min_items() {
                    report.fail(
                        s,
                        format!("node {id}"),
                        "node-occupancy-min",
                        format!("{} entries, min {}", v.entries.len(), self.raw_min_items()),
                    );
                }
                if id == root && v.entries.is_empty() {
                    report.fail(
                        s,
                        format!("node {id}"),
                        "node-occupancy-min",
                        "root is empty".to_string(),
                    );
                }
                if v.children.is_empty() {
                    leaf_depths.push(depth);
                    in_order.extend(v.entries.iter().copied());
                    continue;
                }
            }
            if pos < v.children.len() {
                if pos > 0 {
                    // Interior data: entry pos-1 sits between children.
                    if let Some(e) = v.entries.get(pos - 1) {
                        in_order.push(*e);
                    }
                }
                stack.push((id, depth, pos + 1));
                stack.push((v.children[pos], depth + 1, 0));
            }
        }
        if let Some(i) = first_unsorted(adapter, &in_order) {
            report.fail(
                s,
                "tree".to_string(),
                "key-order",
                format!(
                    "in-order positions {i} and {} out of order (interior-data ordering)",
                    i + 1
                ),
            );
        }
        if let (Some(min), Some(max)) = (
            leaf_depths.iter().min().copied(),
            leaf_depths.iter().max().copied(),
        ) {
            if min != max {
                report.fail(
                    s,
                    "tree".to_string(),
                    "leaf-depth",
                    format!("leaves at depths {min} and {max} (must be uniform)"),
                );
            }
        }
        if total != OrderedIndex::len(self) {
            report.fail(
                s,
                "tree".to_string(),
                "count-reconcile",
                format!("len() = {} but nodes hold {total}", OrderedIndex::len(self)),
            );
        }
        report
    }
}

impl<A: Adapter> DeepCheck for ArrayIndex<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "array";
        let data = self.as_slice();
        if let Some(i) = first_unsorted(self.raw_adapter(), data) {
            report.fail(
                s,
                format!("position {i}"),
                "key-order",
                format!("entries {i} and {} out of order", i + 1),
            );
        }
        if data.len() != OrderedIndex::len(self) {
            report.fail(
                s,
                "array".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but the array holds {}",
                    OrderedIndex::len(self),
                    data.len()
                ),
            );
        }
        if self.raw_capacity() < data.len() {
            report.fail(
                s,
                "array".to_string(),
                "gap-accounting",
                format!(
                    "capacity {} below length {}",
                    self.raw_capacity(),
                    data.len()
                ),
            );
        }
        report
    }
}

impl<A: HashAdapter> DeepCheck for ChainedBucketHash<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "chained-hash";
        let buckets = self.raw_buckets();
        if !buckets.len().is_power_of_two() {
            report.fail(
                s,
                "table".to_string(),
                "table-size",
                format!("{} buckets (must be a power of two)", buckets.len()),
            );
        }
        let mut total = 0usize;
        for b in &buckets {
            if b.truncated {
                report.fail(
                    s,
                    format!("bucket {}", b.bucket),
                    "chain-cycle",
                    "overflow chain does not terminate".to_string(),
                );
            }
            total += b.entries.len();
            for (i, e) in b.entries.iter().enumerate() {
                let home = self.raw_home_bucket(e);
                if home != b.bucket {
                    report.fail(
                        s,
                        format!("bucket {}", b.bucket),
                        "bucket-addressing",
                        format!("chain position {i}: entry hashes to bucket {home}"),
                    );
                }
            }
        }
        if total != UnorderedIndex::len(self) {
            report.fail(
                s,
                "table".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but chains hold {total}",
                    UnorderedIndex::len(self)
                ),
            );
        }
        report
    }
}

impl<A: HashAdapter> DeepCheck for ExtendibleHash<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "extendible-hash";
        let directory = self.raw_directory();
        let buckets = self.raw_buckets();
        let g = self.global_depth();
        if directory.len() != 1usize << g {
            report.fail(
                s,
                "directory".to_string(),
                "directory-size",
                format!("{} slots, expected 2^{g}", directory.len()),
            );
        }
        let mut total = 0usize;
        let mut slots_covered = 0usize;
        for b in &buckets {
            total += b.entries.len();
            if b.local_depth > g {
                report.fail(
                    s,
                    format!("bucket {}", b.id),
                    "local-depth",
                    format!("local depth {} exceeds global depth {g}", b.local_depth),
                );
                continue;
            }
            let mask = (1u64 << b.local_depth) - 1;
            if b.pattern & !mask != 0 {
                report.fail(
                    s,
                    format!("bucket {}", b.id),
                    "pattern-bits",
                    format!(
                        "pattern {:#x} has bits above local depth {}",
                        b.pattern, b.local_depth
                    ),
                );
            }
            // Every directory slot congruent to the pattern must point here.
            let stride = 1usize << b.local_depth;
            let mut slot = (b.pattern & mask) as usize;
            while slot < directory.len() {
                if directory[slot] != b.id {
                    report.fail(
                        s,
                        format!("slot {slot}"),
                        "directory-pointer",
                        format!("points to bucket {}, expected {}", directory[slot], b.id),
                    );
                }
                slots_covered += 1;
                slot += stride;
            }
            for (i, e) in b.entries.iter().enumerate() {
                if self.raw_hash_of(e) & mask != b.pattern {
                    report.fail(
                        s,
                        format!("bucket {}", b.id),
                        "bucket-addressing",
                        format!("entry {i} does not match the bucket pattern"),
                    );
                }
            }
        }
        if slots_covered != directory.len() {
            report.fail(
                s,
                "directory".to_string(),
                "directory-pointer",
                format!(
                    "bucket patterns cover {slots_covered} slots, directory has {}",
                    directory.len()
                ),
            );
        }
        if total != UnorderedIndex::len(self) {
            report.fail(
                s,
                "table".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but buckets hold {total}",
                    UnorderedIndex::len(self)
                ),
            );
        }
        report
    }
}

impl<A: HashAdapter> DeepCheck for LinearHash<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "linear-hash";
        let buckets = self.raw_buckets();
        let base = self.raw_base();
        let split = self.raw_split();
        if split >= base {
            report.fail(
                s,
                "table".to_string(),
                "split-pointer",
                format!("split pointer {split} not below base {base}"),
            );
        }
        if buckets.len() != base + split {
            report.fail(
                s,
                "table".to_string(),
                "split-pointer",
                format!(
                    "{} buckets, expected base {base} + split {split}",
                    buckets.len()
                ),
            );
        }
        let mut total = 0usize;
        for b in &buckets {
            total += b.entries.len();
            for (i, e) in b.entries.iter().enumerate() {
                let addr = self.raw_address_of(e);
                if addr != b.bucket {
                    report.fail(
                        s,
                        format!("bucket {}", b.bucket),
                        "bucket-addressing",
                        format!("page position {i}: entry addresses to bucket {addr}"),
                    );
                }
            }
        }
        if total != UnorderedIndex::len(self) {
            report.fail(
                s,
                "table".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but buckets hold {total}",
                    UnorderedIndex::len(self)
                ),
            );
        }
        report
    }
}

impl<A: HashAdapter> DeepCheck for ModifiedLinearHash<A> {
    fn deep_check(&self) -> Report {
        let mut report = Report::new();
        let s = "modlinear-hash";
        let chains = self.raw_chains();
        let base = self.raw_base();
        let split = self.raw_split();
        if split >= base {
            report.fail(
                s,
                "directory".to_string(),
                "split-pointer",
                format!("split pointer {split} not below base {base}"),
            );
        }
        if chains.len() != base + split {
            report.fail(
                s,
                "directory".to_string(),
                "split-pointer",
                format!(
                    "{} chains, expected base {base} + split {split}",
                    chains.len()
                ),
            );
        }
        let mut total = 0usize;
        for c in &chains {
            if c.truncated {
                report.fail(
                    s,
                    format!("bucket {}", c.bucket),
                    "chain-cycle",
                    "overflow chain does not terminate".to_string(),
                );
            }
            total += c.entries.len();
            for (i, e) in c.entries.iter().enumerate() {
                let addr = self.raw_address_of(e);
                if addr != c.bucket {
                    report.fail(
                        s,
                        format!("bucket {}", c.bucket),
                        "bucket-addressing",
                        format!("chain position {i}: entry addresses to bucket {addr}"),
                    );
                }
            }
        }
        if total != UnorderedIndex::len(self) {
            report.fail(
                s,
                "directory".to_string(),
                "count-reconcile",
                format!(
                    "len() = {} but chains hold {total}",
                    UnorderedIndex::len(self)
                ),
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_index::adapter::NaturalAdapter;
    use mmdb_index::TTreeConfig;

    fn nat() -> NaturalAdapter<u64> {
        NaturalAdapter::new()
    }

    #[test]
    fn clean_structures_pass() {
        let mut t = TTree::new(nat(), TTreeConfig::with_node_size(4));
        let mut avl = AvlTree::new(nat());
        let mut bt = BTree::new(nat(), 4);
        let mut arr = ArrayIndex::new(nat());
        let mut ch = ChainedBucketHash::with_capacity(nat(), 16);
        let mut ext = ExtendibleHash::new(nat(), 2);
        let mut lin = LinearHash::new(nat(), 2);
        let mut ml = ModifiedLinearHash::new(nat(), 2);
        for k in 0..200u64 {
            let k = (k * 7919) % 1000;
            t.insert(k);
            OrderedIndex::insert(&mut avl, k);
            OrderedIndex::insert(&mut bt, k);
            OrderedIndex::insert(&mut arr, k);
            UnorderedIndex::insert(&mut ch, k);
            UnorderedIndex::insert(&mut ext, k);
            UnorderedIndex::insert(&mut lin, k);
            UnorderedIndex::insert(&mut ml, k);
        }
        for k in (0..150u64).map(|k| (k * 7919) % 1000) {
            let _ = t.delete(&k);
            let _ = OrderedIndex::delete(&mut avl, &k);
            let _ = OrderedIndex::delete(&mut bt, &k);
            let _ = OrderedIndex::delete(&mut arr, &k);
            let _ = UnorderedIndex::delete(&mut ch, &k);
            let _ = UnorderedIndex::delete(&mut ext, &k);
            let _ = UnorderedIndex::delete(&mut lin, &k);
            let _ = UnorderedIndex::delete(&mut ml, &k);
        }
        t.deep_check().assert_ok();
        avl.deep_check().assert_ok();
        bt.deep_check().assert_ok();
        arr.deep_check().assert_ok();
        ch.deep_check().assert_ok();
        ext.deep_check().assert_ok();
        lin.deep_check().assert_ok();
        ml.deep_check().assert_ok();
    }
}
