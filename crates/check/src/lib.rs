//! Deep invariant verification for the MM-DBMS (the `mmdb-check` layer).
//!
//! The paper's structures live or die by invariants the type system cannot
//! see: T-Tree min/max occupancy and balance (§3.2.1), B-Tree ordering
//! with data in interior nodes, hash directory/split-pointer arithmetic,
//! the redo-only log discipline (§2.4), and partition-lock compatibility.
//! This crate turns each of those into an executable check that names the
//! structure, the node (or bucket, or LSN) and the violated invariant —
//! precise enough to act on, cheap enough to run after every operation in
//! the property suites.
//!
//! * [`report`] — [`Violation`]/[`Report`]: structured diagnostics.
//! * [`index_checks`] — deep validators for all eight index structures,
//!   unified under the [`DeepCheck`] trait.
//! * [`storage_checks`] — relation/partition reconciliation, temp-list
//!   result-descriptor validity, pointer-field liveness.
//! * [`log_checks`] — LSN monotonicity and the redo-only constraint.
//! * [`lock_checks`] — lock-table compatibility-matrix and queue
//!   discipline over [`mmdb_lock::LockManager::snapshot`].
//! * [`plan_checks`] — query-plan invariants: logical resolution,
//!   physical feasibility under index availability, and
//!   logical/physical semantic equivalence.
//! * [`cache_checks`] — reuse-cache invariants: fingerprint
//!   re-derivation, stamp bookkeeping, and stale-entry unreachability.
//! * [`merge_checks`] — worker-pool merge determinism.
//! * [`explore`] — a deterministic-seed interleaving explorer (a small
//!   shuttle-style scheduler) for concurrency invariants.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache_checks;
pub mod explore;
pub mod index_checks;
pub mod lock_checks;
pub mod log_checks;
pub mod merge_checks;
pub mod plan_checks;
pub mod report;
pub mod storage_checks;

pub use explore::{Explorer, Failure, Scenario, Schedule, Step};
pub use index_checks::DeepCheck;
pub use report::{Report, Violation};
