//! A deterministic-seed interleaving explorer (a small shuttle-style
//! scheduler, no external dependencies).
//!
//! Concurrency bugs hide in interleavings the OS scheduler rarely picks.
//! This explorer makes the schedule the test input: "threads" are step
//! closures over shared state, a seeded PRNG chooses which runnable
//! thread steps next, and an invariant callback runs after every step.
//! A failing run reports its seed — replaying the same seed replays the
//! exact same schedule, so every failure is reproducible by construction.
//!
//! ```
//! use mmdb_check::explore::{Explorer, Scenario, Step};
//!
//! let explorer = Explorer::new(32);
//! let result = explorer.explore(|| Scenario {
//!     state: 0u32,
//!     threads: (0..2)
//!         .map(|_| {
//!             Box::new(|n: &mut u32| {
//!                 *n += 1;
//!                 Step::Done
//!             }) as Box<dyn FnMut(&mut u32) -> Step>
//!         })
//!         .collect(),
//!     invariant: Box::new(|n| if *n <= 2 { Ok(()) } else { Err("overrun".into()) }),
//! });
//! assert!(result.is_ok());
//! ```

use std::collections::HashSet;
use std::fmt;

/// What one scheduling quantum of a thread did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Made progress; more steps remain.
    Ran,
    /// Could not progress (waiting on state another thread must change).
    /// The scheduler will retry it later.
    Blocked,
    /// Finished; the scheduler retires the thread.
    Done,
}

/// A "thread": each call advances it by one atomic step.
pub type ThreadFn<S> = Box<dyn FnMut(&mut S) -> Step>;

/// The invariant callback; an `Err` is a finding and aborts the run.
pub type InvariantFn<S> = Box<dyn Fn(&S) -> Result<(), String>>;

/// One explorable execution: shared state, step closures, and the
/// invariant that must hold after every step.
pub struct Scenario<S> {
    /// The shared state all threads operate on.
    pub state: S,
    /// The "threads", stepped one quantum at a time by the scheduler.
    pub threads: Vec<ThreadFn<S>>,
    /// Checked after every step and once more at quiescence.
    pub invariant: InvariantFn<S>,
}

/// A reproducible schedule: the seed that generated it and the sequence
/// of thread indices that actually stepped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// PRNG seed; replaying it regenerates `trace` exactly.
    pub seed: u64,
    /// Thread index chosen at each quantum, in order.
    pub trace: Vec<usize>,
}

/// A failed exploration: the schedule that produced it and what broke.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The reproducing schedule. Re-run the same scenario through
    /// [`Explorer::replay`] with `schedule.seed` to reproduce.
    pub schedule: Schedule,
    /// The invariant's diagnostic (or a deadlock/livelock report).
    pub message: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "interleaving failure under seed {} ({} steps: {:?}): {}",
            self.schedule.seed,
            self.schedule.trace.len(),
            self.schedule.trace,
            self.message
        )
    }
}

/// The deterministic splitmix64 stream used to pick threads. Public so
/// other checkers (and tests) can derive reproducible shuffles from a
/// seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Drives scenarios through many seeded schedules.
#[derive(Debug, Clone)]
pub struct Explorer {
    seeds: u64,
    max_steps: usize,
}

impl Explorer {
    /// Explore `seeds` distinct schedules (seeds `0..seeds`).
    #[must_use]
    pub fn new(seeds: u64) -> Self {
        Explorer {
            seeds,
            max_steps: 10_000,
        }
    }

    /// Cap the steps per schedule (default 10 000); exceeding the cap is
    /// reported as a livelock.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Run every seed against a fresh scenario; the first failing seed
    /// stops exploration and is returned with its reproducing schedule.
    pub fn explore<S>(&self, mut scenario: impl FnMut() -> Scenario<S>) -> Result<(), Failure> {
        for seed in 0..self.seeds {
            self.run(seed, scenario())?;
        }
        Ok(())
    }

    /// Re-run one specific seed (the reproduction path: paste the seed a
    /// failure printed and step through the identical schedule).
    pub fn replay<S>(&self, seed: u64, scenario: Scenario<S>) -> Result<(), Failure> {
        self.run(seed, scenario)
    }

    fn run<S>(&self, seed: u64, scenario: Scenario<S>) -> Result<(), Failure> {
        let Scenario {
            mut state,
            mut threads,
            invariant,
        } = scenario;
        let mut rng = SplitMix64::new(seed);
        let mut active: Vec<usize> = (0..threads.len()).collect();
        let mut blocked: HashSet<usize> = HashSet::new();
        let mut trace: Vec<usize> = Vec::new();
        let fail = |trace: Vec<usize>, message: String| Failure {
            schedule: Schedule { seed, trace },
            message,
        };
        while !active.is_empty() {
            if trace.len() >= self.max_steps {
                return Err(fail(
                    trace,
                    format!("no quiescence after {} steps (livelock?)", self.max_steps),
                ));
            }
            let pick = (rng.next_u64() % active.len() as u64) as usize;
            let tid = active[pick];
            let step = threads[tid](&mut state);
            trace.push(tid);
            match step {
                Step::Ran => {
                    blocked.clear();
                }
                Step::Done => {
                    active.swap_remove(pick);
                    blocked.clear();
                }
                Step::Blocked => {
                    blocked.insert(tid);
                    if active.iter().all(|t| blocked.contains(t)) {
                        return Err(fail(
                            trace,
                            format!("deadlock: all {} remaining threads blocked", active.len()),
                        ));
                    }
                    continue; // nothing changed; skip the invariant
                }
            }
            if let Err(msg) = invariant(&state) {
                return Err(fail(trace, msg));
            }
        }
        // Quiescent point: every thread completed.
        invariant(&state).map_err(|msg| fail(trace, msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock_checks::check_lock_table;
    use mmdb_lock::{LockManager, LockMode, LockTarget};

    /// A check-then-act "lock" with a window between observing the flag
    /// and setting it — the textbook interleaving bug.
    struct Toy {
        flag: bool,
        critical: u32,
    }

    fn buggy_scenario() -> Scenario<Toy> {
        let mk = || {
            let mut phase = 0u8;
            Box::new(move |s: &mut Toy| match phase {
                0 => {
                    if s.flag {
                        Step::Blocked
                    } else {
                        phase = 1; // observed free; will acquire NEXT step
                        Step::Ran
                    }
                }
                1 => {
                    s.flag = true;
                    s.critical += 1;
                    phase = 2;
                    Step::Ran
                }
                _ => {
                    s.critical -= 1;
                    s.flag = false;
                    Step::Done
                }
            }) as Box<dyn FnMut(&mut Toy) -> Step>
        };
        Scenario {
            state: Toy {
                flag: false,
                critical: 0,
            },
            threads: vec![mk(), mk()],
            invariant: Box::new(|s| {
                if s.critical <= 1 {
                    Ok(())
                } else {
                    Err(format!("{} threads in the critical section", s.critical))
                }
            }),
        }
    }

    #[test]
    fn buggy_lock_is_caught_and_the_seed_replays() {
        let explorer = Explorer::new(64);
        let failure = explorer
            .explore(buggy_scenario)
            .expect_err("check-then-act race must be found within 64 schedules");
        assert!(failure.message.contains("critical section"), "{failure}");
        // Replay from nothing but the printed seed: identical schedule,
        // identical diagnosis.
        let replayed = explorer
            .replay(failure.schedule.seed, buggy_scenario())
            .expect_err("replaying the failing seed must fail again");
        assert_eq!(replayed.schedule, failure.schedule);
        assert_eq!(replayed.message, failure.message);
        // A different scenario instance under a fresh explorer too (the
        // seed alone carries the reproduction).
        let again = Explorer::new(1)
            .replay(failure.schedule.seed, buggy_scenario())
            .expect_err("seed is self-contained");
        assert_eq!(again.schedule.trace, failure.schedule.trace);
    }

    #[test]
    fn atomic_lock_survives_all_schedules() {
        let scenario = || {
            let mk = || {
                let mut acquired = false;
                Box::new(move |s: &mut Toy| {
                    if !acquired {
                        if s.flag {
                            return Step::Blocked;
                        }
                        // Check and set in ONE step: no window.
                        s.flag = true;
                        s.critical += 1;
                        acquired = true;
                        return Step::Ran;
                    }
                    s.critical -= 1;
                    s.flag = false;
                    Step::Done
                }) as Box<dyn FnMut(&mut Toy) -> Step>
            };
            Scenario {
                state: Toy {
                    flag: false,
                    critical: 0,
                },
                threads: vec![mk(), mk(), mk()],
                invariant: Box::new(|s| {
                    if s.critical <= 1 {
                        Ok(())
                    } else {
                        Err(format!("{} threads in the critical section", s.critical))
                    }
                }),
            }
        };
        Explorer::new(128).explore(scenario).unwrap();
    }

    #[test]
    fn real_lock_manager_exploration_is_clean() {
        let scenario = || {
            let mgr = LockManager::new(8);
            let txns = [mgr.begin(), mgr.begin(), mgr.begin()];
            let target = LockTarget::new(1, 0);
            let threads = txns
                .iter()
                .enumerate()
                .map(|(i, &txn)| {
                    // Mix shared and exclusive contenders on one target.
                    let mode = if i == 0 {
                        LockMode::Exclusive
                    } else {
                        LockMode::Shared
                    };
                    let mut holding = false;
                    Box::new(move |mgr: &mut LockManager| {
                        if holding {
                            mgr.release_all(txn);
                            return Step::Done;
                        }
                        match mgr.lock_step(txn, target, mode) {
                            Ok(true) => {
                                holding = true;
                                Step::Ran
                            }
                            Ok(false) => Step::Blocked,
                            Err(e) => panic!("single-target workload cannot deadlock: {e}"),
                        }
                    }) as Box<dyn FnMut(&mut LockManager) -> Step>
                })
                .collect();
            Scenario {
                state: mgr,
                threads,
                invariant: Box::new(|mgr: &LockManager| {
                    check_lock_table(&mgr.snapshot()).into_result()
                }),
            }
        };
        Explorer::new(64).explore(scenario).unwrap();
    }
}
