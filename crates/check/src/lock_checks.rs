//! Lock-table invariants over [`LockTableSnapshot`]: the two-mode
//! compatibility matrix (S/S compatible, anything with X not), FIFO queue
//! discipline, and holder/queue liveness.
//!
//! These are *structural* checks, valid at any instant: an exclusive
//! holder is sole, holders are pairwise compatible, no transaction
//! appears twice as holder or twice in the queue, a queued transaction
//! that already holds the target must be an S→X upgrade, and every
//! transaction named anywhere is live. FIFO *grantability* (the front of
//! the queue is blocked for a reason) is only meaningful at quiescent
//! points — the explorer asserts it there, not here.

use crate::report::Report;
use mmdb_lock::{LockMode, LockTableSnapshot, TargetSnapshot};
use std::collections::HashSet;

/// Check one target's holder set and wait queue.
fn check_target(t: &TargetSnapshot, report: &mut Report) {
    let s = "lock-table";
    let loc = format!("target {}:{}", t.target.relation, t.target.partition);
    if t.holders.is_empty() && t.queued.is_empty() {
        report.fail(
            s,
            loc.clone(),
            "queue-discipline",
            "empty lock state retained in the table".to_string(),
        );
    }
    let mut holder_txns = HashSet::new();
    for (txn, _) in &t.holders {
        if !holder_txns.insert(*txn) {
            report.fail(
                s,
                loc.clone(),
                "queue-discipline",
                format!("transaction {txn:?} holds the target twice"),
            );
        }
    }
    let exclusive: Vec<_> = t
        .holders
        .iter()
        .filter(|(_, m)| *m == LockMode::Exclusive)
        .collect();
    if !exclusive.is_empty() && t.holders.len() > 1 {
        report.fail(
            s,
            loc.clone(),
            "compat-matrix",
            format!(
                "exclusive holder {:?} coexists with {} other holder(s)",
                exclusive[0].0,
                t.holders.len() - 1
            ),
        );
    }
    let mut queued_txns = HashSet::new();
    for (txn, mode) in &t.queued {
        if !queued_txns.insert(*txn) {
            report.fail(
                s,
                loc.clone(),
                "queue-discipline",
                format!("transaction {txn:?} queued twice"),
            );
        }
        if holder_txns.contains(txn) {
            // Queueing while holding is only legal as an S→X upgrade.
            let holds_shared = t
                .holders
                .iter()
                .any(|(h, m)| h == txn && *m == LockMode::Shared);
            if !(holds_shared && *mode == LockMode::Exclusive) {
                report.fail(
                    s,
                    loc.clone(),
                    "queue-discipline",
                    format!("holder {txn:?} queued for a non-upgrade request"),
                );
            }
        }
    }
}

/// Check a whole lock-table snapshot, including that every named
/// transaction is live.
#[must_use]
pub fn check_lock_table(snap: &LockTableSnapshot) -> Report {
    let mut report = Report::new();
    let live: HashSet<_> = snap.live_txns.iter().copied().collect();
    for t in &snap.targets {
        check_target(t, &mut report);
        for (txn, role) in t
            .holders
            .iter()
            .map(|(x, _)| (*x, "holds"))
            .chain(t.queued.iter().map(|(x, _)| (*x, "waits on")))
        {
            if !live.contains(&txn) {
                report.fail(
                    "lock-table",
                    format!("target {}:{}", t.target.relation, t.target.partition),
                    "txn-live",
                    format!("dead transaction {txn:?} {role} the target"),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_lock::{LockManager, LockTarget};

    #[test]
    fn live_manager_snapshot_is_clean() {
        let mgr = LockManager::new(16);
        let a = mgr.begin();
        let b = mgr.begin();
        let t0 = LockTarget::new(1, 0);
        let t1 = LockTarget::new(1, 1);
        mgr.lock(a, t0, LockMode::Shared).unwrap();
        mgr.lock(b, t0, LockMode::Shared).unwrap();
        mgr.lock(b, t1, LockMode::Exclusive).unwrap();
        check_lock_table(&mgr.snapshot()).assert_ok();
        mgr.release_all(a);
        mgr.release_all(b);
        check_lock_table(&mgr.snapshot()).assert_ok();
    }

    #[test]
    fn fabricated_violations_are_rejected() {
        use mmdb_lock::TxnId;
        let t = LockTarget::new(2, 7);
        let snap = LockTableSnapshot {
            targets: vec![TargetSnapshot {
                target: t,
                holders: vec![
                    (TxnId(1), LockMode::Exclusive),
                    (TxnId(2), LockMode::Shared),
                ],
                queued: vec![(TxnId(3), LockMode::Shared), (TxnId(3), LockMode::Shared)],
            }],
            live_txns: vec![TxnId(1), TxnId(2)],
        };
        let msg = check_lock_table(&snap).into_result().unwrap_err();
        assert!(msg.contains("compat-matrix"), "{msg}");
        assert!(msg.contains("queued twice"), "{msg}");
        assert!(msg.contains("txn-live"), "{msg}");
        assert!(msg.contains("target 2:7"), "{msg}");
    }
}
