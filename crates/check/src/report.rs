//! Structured diagnostics: every failed check produces a [`Violation`]
//! naming the structure, the location inside it, and the invariant that
//! broke — the three pieces a human (or a negative test) needs to act.

use std::fmt;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which structure the violation is in (e.g. `"ttree"`, `"log"`).
    pub structure: String,
    /// Where inside the structure (node id, bucket number, LSN, …).
    pub location: String,
    /// Short invariant name (e.g. `"node-occupancy"`, `"lsn-monotone"`).
    pub invariant: String,
    /// Human-readable specifics (observed vs. expected).
    pub detail: String,
}

impl Violation {
    /// Build a violation.
    #[must_use]
    pub fn new(structure: &str, location: String, invariant: &str, detail: String) -> Self {
        Violation {
            structure: structure.to_string(),
            location,
            invariant: invariant.to_string(),
            detail,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.structure, self.invariant, self.location, self.detail
        )
    }
}

/// The outcome of a check pass: zero or more violations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    violations: Vec<Violation>,
}

impl Report {
    /// An empty (passing) report.
    #[must_use]
    pub fn new() -> Self {
        Report::default()
    }

    /// Record a violation.
    pub fn push(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Convenience: record a violation from parts.
    pub fn fail(&mut self, structure: &str, location: String, invariant: &str, detail: String) {
        self.push(Violation::new(structure, location, invariant, detail));
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: Report) {
        self.violations.extend(other.violations);
    }

    /// True when no invariant was violated.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations, in discovery order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `Ok(())` if the report is clean, otherwise an `Err` with every
    /// violation rendered one per line (what test hooks assert on).
    pub fn into_result(self) -> Result<(), String> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            let lines: Vec<String> = self.violations.iter().map(Violation::to_string).collect();
            Err(lines.join("\n"))
        }
    }

    /// Panic with the full diagnostic list unless the report is clean.
    ///
    /// # Panics
    /// If any violation was recorded.
    pub fn assert_ok(self) {
        if let Err(msg) = self.into_result() {
            panic!("invariant check failed:\n{msg}");
        }
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "ok");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_collects_and_renders() {
        let mut r = Report::new();
        assert!(r.is_ok());
        r.fail("ttree", "node 3".into(), "key-order", "5 after 7".into());
        assert!(!r.is_ok());
        let msg = r.clone().into_result().unwrap_err();
        assert!(msg.contains("ttree"));
        assert!(msg.contains("node 3"));
        assert!(msg.contains("key-order"));
        let mut other = Report::new();
        other.merge(r);
        assert_eq!(other.violations().len(), 1);
    }
}
