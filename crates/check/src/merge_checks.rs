//! Worker-pool merge determinism.
//!
//! The parallel executor's only merge rule is
//! [`mmdb_exec::merge_indexed`]: workers tag results with their task
//! index and the pool reorders by tag, so query output is independent of
//! completion order. This check feeds a tagged result set through the
//! merge under several adversarial completion orders (identity,
//! reversed, rotated, seeded shuffles) and demands identical output.

use crate::explore::SplitMix64;
use crate::report::Report;
use mmdb_exec::merge_indexed;
use std::fmt::Debug;

/// Verify `merge_indexed` produces the same output for every completion
/// order of `tagged`. The tags need not be dense or start at zero; only
/// the relative order matters.
#[must_use]
pub fn check_merge_determinism<T>(tagged: &[(usize, T)]) -> Report
where
    T: Clone + PartialEq + Debug,
{
    let mut report = Report::new();
    let s = "parallel-pool";
    let reference = merge_indexed(tagged.to_vec());
    let mut orders: Vec<(String, Vec<(usize, T)>)> = Vec::new();
    let mut reversed = tagged.to_vec();
    reversed.reverse();
    orders.push(("reversed".to_string(), reversed));
    if !tagged.is_empty() {
        let mut rotated = tagged.to_vec();
        rotated.rotate_left(tagged.len() / 2);
        orders.push(("rotated".to_string(), rotated));
    }
    for seed in 0..4u64 {
        let mut rng = SplitMix64::new(0x9e37_79b9 ^ seed);
        let mut shuffled = tagged.to_vec();
        // Fisher-Yates with the deterministic stream.
        for i in (1..shuffled.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            shuffled.swap(i, j);
        }
        orders.push((format!("shuffle-{seed}"), shuffled));
    }
    for (name, order) in orders {
        let merged = merge_indexed(order);
        if merged != reference {
            report.fail(
                s,
                format!("completion order {name}"),
                "merge-determinism",
                format!(
                    "merged output diverges from identity order ({} items)",
                    tagged.len()
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_order_insensitive() {
        let tagged: Vec<(usize, u64)> = (0..37).map(|i| (i, (i as u64) * 3)).collect();
        check_merge_determinism(&tagged).assert_ok();
        check_merge_determinism::<u64>(&[]).assert_ok();
    }

    #[test]
    fn a_completion_sensitive_merge_would_be_caught() {
        // Sanity-check the checker itself: if the pool concatenated in
        // completion order (no reorder), different orders differ.
        let tagged: Vec<(usize, u64)> = vec![(0, 1), (1, 2), (2, 3)];
        let identity: Vec<u64> = tagged.iter().map(|(_, v)| *v).collect();
        let mut rev = tagged.clone();
        rev.reverse();
        let concat: Vec<u64> = rev.iter().map(|(_, v)| *v).collect();
        assert_ne!(identity, concat);
        assert_eq!(merge_indexed(rev), identity);
    }
}
