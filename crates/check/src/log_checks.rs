//! Log invariants: LSN monotonicity and the redo-only discipline (§2.4).
//!
//! The paper's recovery design stages uncommitted records in a stable
//! buffer and discards them on abort — *"the log entry is removed and no
//! undo is needed"*. That only works if LSNs are assigned monotonically,
//! committed records reach the device in LSN order, and no record ever
//! carries an LSN at or beyond the buffer's next assignment.

use crate::report::Report;
use mmdb_recovery::StableLogBuffer;
use std::collections::HashSet;

/// Check a stable log buffer: committed records strictly LSN-ordered,
/// staged records strictly LSN-ordered (abort preserves relative order),
/// no LSN duplicated across the two sets, and every LSN below
/// `next_lsn()`. Redo-only is structural here — every record is an
/// after-image; there is no undo record kind to misuse — so the check
/// enforces the ordering discipline that makes redo idempotent.
#[must_use]
pub fn check_log_buffer(buf: &StableLogBuffer) -> Report {
    let mut report = Report::new();
    let s = "log";
    let next = buf.next_lsn();
    let mut seen: HashSet<u64> = HashSet::new();
    for (set, records) in [
        ("committed", buf.committed_records()),
        ("staged", buf.staged_records()),
    ] {
        for w in records.windows(2) {
            if w[1].lsn <= w[0].lsn {
                report.fail(
                    s,
                    format!("{set} lsn {}", w[1].lsn),
                    "lsn-monotone",
                    format!("follows lsn {} in {set} order", w[0].lsn),
                );
            }
        }
        for r in records {
            if r.lsn >= next {
                report.fail(
                    s,
                    format!("{set} lsn {}", r.lsn),
                    "lsn-bound",
                    format!("at or beyond next_lsn {next}"),
                );
            }
            if !seen.insert(r.lsn) {
                report.fail(
                    s,
                    format!("{set} lsn {}", r.lsn),
                    "lsn-duplicate",
                    "lsn assigned to more than one record".to_string(),
                );
            }
            if r.image.is_empty() {
                report.fail(
                    s,
                    format!("{set} lsn {}", r.lsn),
                    "redo-image",
                    "record carries no after-image (redo-only log)".to_string(),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_recovery::PartitionKey;

    #[test]
    fn clean_buffer_passes() {
        let mut buf = StableLogBuffer::new();
        for txn in 0..4u64 {
            buf.log(txn, PartitionKey::new(1, txn as u32), vec![txn as u8; 8]);
        }
        buf.commit(1);
        buf.abort(2);
        check_log_buffer(&buf).assert_ok();
    }
}
