//! Reuse-cache invariants: every resident entry's fingerprint re-derives
//! from its canonical form, stamp bookkeeping is internally consistent,
//! and no entry whose inputs have changed can be served.
//!
//! The staleness judgement here is *independent* of the cache's own
//! freshness test: [`check_cache`] recomputes "did any input move?" from
//! the entry's stamps and the live [`VersionSource`], then asserts the
//! cache's serving decision ([`ReuseCache::would_serve`]) agrees. A bug
//! in either side surfaces as a named violation instead of a stale row.

use crate::report::Report;
use mmdb_exec::cache::{fingerprint, ReuseCache, VersionSource};

const STRUCTURE: &str = "reuse cache";

/// Validate every resident entry of `cache` against `live`.
#[must_use]
pub fn check_cache(cache: &ReuseCache, live: &dyn VersionSource) -> Report {
    let mut report = Report::new();
    for e in cache.entries() {
        let loc = || format!("entry {:#x} ({})", e.fingerprint, e.canonical);

        // The key is a pure function of the canonical form.
        let derived = fingerprint(&e.canonical);
        if e.fingerprint != derived {
            report.fail(
                STRUCTURE,
                loc(),
                "the fingerprint re-derives identically from the canonical form",
                format!("stored {:#x}, derived {derived:#x}", e.fingerprint),
            );
        }

        // Stamp bookkeeping: one stamp vector per table, rows arity
        // matching the bound-table count.
        if e.tables.is_empty() {
            report.fail(
                STRUCTURE,
                loc(),
                "an entry covers at least one table",
                "tables list is empty".to_string(),
            );
        }
        if e.tables.len() != e.stamps.len() {
            report.fail(
                STRUCTURE,
                loc(),
                "one version-stamp vector per covered table",
                format!(
                    "{} tables, {} stamp vectors",
                    e.tables.len(),
                    e.stamps.len()
                ),
            );
        }
        if e.rows.arity() != e.tables.len() {
            report.fail(
                STRUCTURE,
                loc(),
                "cached rows carry one column per covered table",
                format!("arity {}, {} tables", e.rows.arity(), e.tables.len()),
            );
        }

        // Independent staleness judgement: an entry is fresh iff the
        // epoch matches and every covered table's live version vector
        // equals the stamp taken at compute time.
        let fresh = e.epoch == live.catalog_epoch()
            && e.tables.len() == e.stamps.len()
            && e.tables
                .iter()
                .zip(&e.stamps)
                .all(|(t, stamp)| live.table_versions(t).as_deref() == Some(stamp.as_slice()));
        let derivable = e.fingerprint == derived;
        let served = cache.would_serve(e.fingerprint, &e.canonical, live);
        if fresh && derivable && !served {
            report.fail(
                STRUCTURE,
                loc(),
                "a fresh entry is servable",
                "stamps match the live versions but would_serve is false".to_string(),
            );
        }
        if !fresh && served {
            report.fail(
                STRUCTURE,
                loc(),
                "stamped versions match or the entry is unreachable",
                "an input version moved but the entry would still serve".to_string(),
            );
        }
    }

    // Occupancy accounting must agree with the per-entry bytes.
    let sum: usize = cache.entries().map(|e| e.bytes).sum();
    let r = cache.report();
    if r.bytes != sum {
        report.fail(
            STRUCTURE,
            "occupancy".to_string(),
            "retained-bytes counter equals the sum of entry sizes",
            format!("counter {}, sum {sum}", r.bytes),
        );
    }
    if r.bytes > cache.capacity_bytes() {
        report.fail(
            STRUCTURE,
            "occupancy".to_string(),
            "retained bytes stay within the configured budget",
            format!("{} > {}", r.bytes, cache.capacity_bytes()),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_exec::cache::StoreTicket;
    use mmdb_storage::{TempList, TupleId};
    use std::collections::HashMap;

    struct MemVersions(HashMap<String, Vec<u64>>);

    impl VersionSource for MemVersions {
        fn table_versions(&self, table: &str) -> Option<Vec<u64>> {
            self.0.get(table).cloned()
        }
    }

    fn live(v: u64) -> MemVersions {
        MemVersions(HashMap::from([("emp".to_string(), vec![v])]))
    }

    fn ticket(v: u64) -> StoreTicket {
        let canonical = "sel(emp.age = 30)".to_string();
        StoreTicket {
            fingerprint: fingerprint(&canonical),
            canonical,
            tables: vec!["emp".to_string()],
            stamps: vec![vec![v]],
            epoch: 0,
            cost: 100.0,
        }
    }

    fn rows() -> TempList {
        TempList::from_tids(vec![TupleId::new(0, 1), TupleId::new(0, 3)])
    }

    #[test]
    fn healthy_cache_passes() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        assert!(check_cache(&cache, &live(5)).is_ok());
        // Stale-but-resident is fine too: lazy invalidation means the
        // entry lingers, the invariant is only that it cannot serve.
        assert!(check_cache(&cache, &live(6)).is_ok());
    }

    #[test]
    fn tampered_fingerprint_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.fingerprint ^= 0xdead_beef;
        }
        // NB: the entry is keyed by the old fingerprint, so would_serve
        // also goes false — the re-derivation check is what fires.
        let report = check_cache(&cache, &live(5));
        assert!(!report.is_ok());
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("re-derives"), "{err}");
    }

    #[test]
    fn tampered_canonical_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.canonical = "sel(emp.age = 99)".to_string();
        }
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }

    #[test]
    fn tampered_stamps_must_not_serve() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        // Pretend the entry was computed at a future version: live says
        // 5, the stamp says 9 — the entry must be unservable.
        for e in cache.entries_mut() {
            e.stamps = vec![vec![9]];
        }
        let report = check_cache(&cache, &live(5));
        assert!(report.is_ok(), "stale entries may linger unservable");
        assert!(!cache.would_serve(ticket(5).fingerprint, "sel(emp.age = 30)", &live(5)));
    }

    #[test]
    fn arity_mismatch_is_caught() {
        let mut cache = ReuseCache::default();
        let mut t = ticket(5);
        t.tables.push("dept".to_string());
        t.stamps.push(vec![1]);
        cache.insert(&t, &rows()); // arity-1 rows against two tables
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }

    #[test]
    fn missing_stamp_vector_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.stamps.clear();
        }
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }
}
