//! Reuse-cache invariants: every resident entry's fingerprint re-derives
//! from its canonical form, stamp bookkeeping is internally consistent,
//! and no entry whose inputs have changed can be served.
//!
//! The staleness judgement here is *independent* of the cache's own
//! freshness test: [`check_cache`] recomputes "did any input move?" from
//! the entry's stamps and the live [`VersionSource`], then asserts the
//! cache's serving decision ([`ReuseCache::would_serve`]) agrees. A bug
//! in either side surfaces as a named violation instead of a stale row.

use crate::report::Report;
use mmdb_exec::cache::{fingerprint, DeltaEvent, ReuseCache, VersionSource, DELTA_BUDGET};

const STRUCTURE: &str = "reuse cache";

/// Componentwise `a <= b` for partition-version vectors, tolerating
/// growth (a later vector may have more partitions, never fewer).
fn versions_le(a: &[u64], b: &[u64]) -> bool {
    a.len() <= b.len() && a.iter().zip(b).all(|(x, y)| x <= y)
}

/// Validate every resident entry of `cache` against `live`.
#[must_use]
pub fn check_cache(cache: &ReuseCache, live: &dyn VersionSource) -> Report {
    let mut report = Report::new();
    for e in cache.entries() {
        let loc = || format!("entry {:#x} ({})", e.fingerprint, e.canonical);

        // The key is a pure function of the canonical form.
        let derived = fingerprint(&e.canonical);
        if e.fingerprint != derived {
            report.fail(
                STRUCTURE,
                loc(),
                "the fingerprint re-derives identically from the canonical form",
                format!("stored {:#x}, derived {derived:#x}", e.fingerprint),
            );
        }

        // Stamp bookkeeping: one stamp vector per table, rows arity
        // matching the bound-table count.
        if e.tables.is_empty() {
            report.fail(
                STRUCTURE,
                loc(),
                "an entry covers at least one table",
                "tables list is empty".to_string(),
            );
        }
        if e.tables.len() != e.stamps.len() {
            report.fail(
                STRUCTURE,
                loc(),
                "one version-stamp vector per covered table",
                format!(
                    "{} tables, {} stamp vectors",
                    e.tables.len(),
                    e.stamps.len()
                ),
            );
        }
        if e.rows.arity() != e.tables.len() {
            report.fail(
                STRUCTURE,
                loc(),
                "cached rows carry one column per covered table",
                format!("arity {}, {} tables", e.rows.arity(), e.tables.len()),
            );
        }

        // Independent staleness judgement: an entry is fresh iff the
        // epoch matches and every covered table's live version vector
        // equals the stamp taken at compute time.
        let fresh = e.epoch == live.catalog_epoch()
            && e.tables.len() == e.stamps.len()
            && e.tables
                .iter()
                .zip(&e.stamps)
                .all(|(t, stamp)| live.table_versions(t).as_deref() == Some(stamp.as_slice()));
        let derivable = e.fingerprint == derived;
        let served = cache.would_serve(e.fingerprint, &e.canonical, live);
        if fresh && derivable && !served {
            report.fail(
                STRUCTURE,
                loc(),
                "a fresh entry is servable",
                "stamps match the live versions but would_serve is false".to_string(),
            );
        }
        if !fresh && served {
            report.fail(
                STRUCTURE,
                loc(),
                "stamped versions match or the entry is unreachable",
                "an input version moved but the entry would still serve".to_string(),
            );
        }

        // Structured-key consistency: a keyed entry is a single-table
        // arity-1 selection whose canonical form re-derives from the key
        // (so subsumption matching and fingerprint matching can never
        // disagree about what the rows mean).
        if let Some(k) = &e.key {
            let derived_canon = format!("sel({}.{} {})", k.table, k.attr, k.pred);
            if e.canonical != derived_canon {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "a keyed entry's canonical form re-derives from its reuse key",
                    format!("stored {:?}, derived {derived_canon:?}", e.canonical),
                );
            }
            if e.tables.as_slice() != [k.table.clone()] {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "a keyed entry covers exactly its key's table",
                    format!("tables {:?}, key table {:?}", e.tables, k.table),
                );
            }
            if k.maintainable && !k.order_safe {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "maintainable entries are order-safe (sequential scan order)",
                    "maintainable flag set on an order-unsafe key".to_string(),
                );
            }
        }

        // Delta-chain invariants.
        if !e.deltas.is_empty() {
            let maintainable = e.key.as_ref().is_some_and(|k| k.maintainable);
            if !maintainable {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "only maintainable selection entries accrue deltas",
                    format!(
                        "{} pending deltas on an unmaintainable entry",
                        e.deltas.len()
                    ),
                );
            }
            if e.deltas.len() > DELTA_BUDGET {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "a delta chain never outgrows the budget",
                    format!("{} > {DELTA_BUDGET}", e.deltas.len()),
                );
            }
            if e.deltas.iter().any(|d| d.event == DeltaEvent::Barrier) {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "relocation barriers evict, they are never stored",
                    "a Barrier record is resident in a delta chain".to_string(),
                );
            }
            // The chain must walk monotonically from the compute-time
            // stamp to `delta_stamps`: stamps[0] <= rec1 <= ... <= tip.
            let mut prev: &[u64] = e.stamps.first().map_or(&[], Vec::as_slice);
            let mut monotone = true;
            for d in &e.deltas {
                monotone &= versions_le(prev, &d.versions_after);
                prev = &d.versions_after;
            }
            monotone &= prev == e.delta_stamps.as_slice();
            if !monotone {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "the delta chain walks the version lattice upward to delta_stamps",
                    format!(
                        "stamps {:?} -> chain {:?} -> delta_stamps {:?}",
                        e.stamps.first(),
                        e.deltas
                            .iter()
                            .map(|d| &d.versions_after)
                            .collect::<Vec<_>>(),
                        e.delta_stamps
                    ),
                );
            }

            // Gap coverage: the cache may serve this entry via patching
            // iff the chain's tip *is* the live vector — the deltas then
            // exactly cover the version gap between the entry's stamps
            // and the live table. Judged independently of the cache's
            // own `would_serve_delta`.
            let gap_covered = !fresh
                && maintainable
                && e.epoch == live.catalog_epoch()
                && e.tables.len() == 1
                && live.table_versions(&e.tables[0]).as_deref() == Some(e.delta_stamps.as_slice());
            let delta_served = cache.would_serve_delta(e.fingerprint, &e.canonical, live);
            if gap_covered && derivable && !delta_served {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "a gap-covering delta chain is delta-servable",
                    "chain tip equals the live versions but would_serve_delta is false".to_string(),
                );
            }
            if !gap_covered && delta_served {
                report.fail(
                    STRUCTURE,
                    loc(),
                    "deltas served only when they exactly cover the version gap",
                    "would_serve_delta is true but the chain tip is not the live vector"
                        .to_string(),
                );
            }
        } else if !e.delta_stamps.is_empty() && e.stamps.first() != Some(&e.delta_stamps) {
            // An empty chain means "no pending maintenance": the tip
            // must sit exactly at the compute-time stamp.
            report.fail(
                STRUCTURE,
                loc(),
                "an empty delta chain keeps delta_stamps at the compute-time stamp",
                format!(
                    "stamps {:?}, delta_stamps {:?}",
                    e.stamps.first(),
                    e.delta_stamps
                ),
            );
        }
    }

    // Occupancy accounting must agree with the per-entry bytes.
    let sum: usize = cache.entries().map(|e| e.bytes).sum();
    let r = cache.report();
    if r.bytes != sum {
        report.fail(
            STRUCTURE,
            "occupancy".to_string(),
            "retained-bytes counter equals the sum of entry sizes",
            format!("counter {}, sum {sum}", r.bytes),
        );
    }
    if r.bytes > cache.capacity_bytes() {
        report.fail(
            STRUCTURE,
            "occupancy".to_string(),
            "retained bytes stay within the configured budget",
            format!("{} > {}", r.bytes, cache.capacity_bytes()),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdb_exec::cache::{DeltaRec, ReuseKey, StoreTicket};
    use mmdb_exec::Predicate;
    use mmdb_storage::{KeyValue, TempList, TupleId};
    use std::collections::HashMap;

    struct MemVersions(HashMap<String, Vec<u64>>);

    impl VersionSource for MemVersions {
        fn table_versions(&self, table: &str) -> Option<Vec<u64>> {
            self.0.get(table).cloned()
        }
    }

    fn live(v: u64) -> MemVersions {
        MemVersions(HashMap::from([("emp".to_string(), vec![v])]))
    }

    fn ticket(v: u64) -> StoreTicket {
        let canonical = "sel(emp.age = 30)".to_string();
        StoreTicket {
            fingerprint: fingerprint(&canonical),
            canonical,
            tables: vec!["emp".to_string()],
            stamps: vec![vec![v]],
            epoch: 0,
            cost: 100.0,
            key: None,
        }
    }

    fn keyed_ticket(v: u64) -> StoreTicket {
        let mut t = ticket(v);
        t.key = Some(ReuseKey {
            table: "emp".to_string(),
            attr: "age".to_string(),
            pred: Predicate::Eq(KeyValue::Int(30)),
            order_safe: true,
            maintainable: true,
        });
        t
    }

    fn rows() -> TempList {
        TempList::from_tids(vec![TupleId::new(0, 1), TupleId::new(0, 3)])
    }

    #[test]
    fn healthy_cache_passes() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        assert!(check_cache(&cache, &live(5)).is_ok());
        // Stale-but-resident is fine too: lazy invalidation means the
        // entry lingers, the invariant is only that it cannot serve.
        assert!(check_cache(&cache, &live(6)).is_ok());
    }

    #[test]
    fn tampered_fingerprint_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.fingerprint ^= 0xdead_beef;
        }
        // NB: the entry is keyed by the old fingerprint, so would_serve
        // also goes false — the re-derivation check is what fires.
        let report = check_cache(&cache, &live(5));
        assert!(!report.is_ok());
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("re-derives"), "{err}");
    }

    #[test]
    fn tampered_canonical_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.canonical = "sel(emp.age = 99)".to_string();
        }
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }

    #[test]
    fn tampered_stamps_must_not_serve() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        // Pretend the entry was computed at a future version: live says
        // 5, the stamp says 9 — the entry must be unservable.
        for e in cache.entries_mut() {
            e.stamps = vec![vec![9]];
        }
        let report = check_cache(&cache, &live(5));
        assert!(report.is_ok(), "stale entries may linger unservable");
        assert!(!cache.would_serve(ticket(5).fingerprint, "sel(emp.age = 30)", &live(5)));
    }

    #[test]
    fn arity_mismatch_is_caught() {
        let mut cache = ReuseCache::default();
        let mut t = ticket(5);
        t.tables.push("dept".to_string());
        t.stamps.push(vec![1]);
        cache.insert(&t, &rows()); // arity-1 rows against two tables
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }

    #[test]
    fn missing_stamp_vector_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows());
        for e in cache.entries_mut() {
            e.stamps.clear();
        }
        assert!(!check_cache(&cache, &live(5)).is_ok());
    }

    /// Put a maintained keyed entry with one pending delta into `cache`
    /// (hot, chain `[5] -> [6]`).
    fn maintained_entry(cache: &mut ReuseCache) {
        cache.insert(&keyed_ticket(5), &rows());
        let t = keyed_ticket(5);
        // Heat the entry so note_write maintains it instead of skipping.
        assert!(cache
            .lookup(t.fingerprint, &t.canonical, &live(5))
            .is_some());
        cache.note_write("emp", DeltaEvent::Insert(TupleId::new(0, 7)), &[6]);
        assert_eq!(cache.entries().next().unwrap().deltas.len(), 1);
    }

    #[test]
    fn healthy_maintained_entry_passes_and_gap_coverage_agrees() {
        let mut cache = ReuseCache::default();
        maintained_entry(&mut cache);
        let t = keyed_ticket(5);
        // At live [6] the chain exactly covers the gap.
        assert!(check_cache(&cache, &live(6)).is_ok());
        assert!(cache.would_serve_delta(t.fingerprint, &t.canonical, &live(6)));
        // At live [7] it does not (an unlogged write slipped past):
        // still consistent — just not servable.
        assert!(check_cache(&cache, &live(7)).is_ok());
        assert!(!cache.would_serve_delta(t.fingerprint, &t.canonical, &live(7)));
    }

    #[test]
    fn tampered_delta_chain_is_caught() {
        let mut cache = ReuseCache::default();
        maintained_entry(&mut cache);
        // Break monotonicity: the chain claims the write *lowered* a
        // version counter.
        for e in cache.entries_mut() {
            e.deltas[0].versions_after = vec![4];
            e.delta_stamps = vec![4];
        }
        let report = check_cache(&cache, &live(6));
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("version lattice"), "{err}");
    }

    #[test]
    fn tampered_chain_tip_is_caught() {
        let mut cache = ReuseCache::default();
        maintained_entry(&mut cache);
        // delta_stamps disagrees with the last record's vector.
        for e in cache.entries_mut() {
            e.delta_stamps = vec![9];
        }
        assert!(!check_cache(&cache, &live(6)).is_ok());
    }

    #[test]
    fn widened_key_predicate_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&keyed_ticket(5), &rows());
        // Widen the key's interval without touching the canonical form:
        // subsumption would now hand these rows to queries they don't
        // answer — the key/canonical re-derivation must fire.
        for e in cache.entries_mut() {
            e.key.as_mut().unwrap().pred = Predicate::less(KeyValue::Int(1000));
        }
        let report = check_cache(&cache, &live(5));
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("re-derives from its reuse key"), "{err}");
    }

    #[test]
    fn deltas_on_unmaintainable_entry_are_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&ticket(5), &rows()); // no key: exact-only entry
        for e in cache.entries_mut() {
            e.deltas.push(DeltaRec {
                event: DeltaEvent::Insert(TupleId::new(0, 7)),
                versions_after: vec![6],
            });
            e.delta_stamps = vec![6];
        }
        let report = check_cache(&cache, &live(6));
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("maintainable"), "{err}");
    }

    #[test]
    fn stored_barrier_is_caught() {
        let mut cache = ReuseCache::default();
        maintained_entry(&mut cache);
        for e in cache.entries_mut() {
            e.deltas.push(DeltaRec {
                event: DeltaEvent::Barrier,
                versions_after: vec![7],
            });
            e.delta_stamps = vec![7];
        }
        let report = check_cache(&cache, &live(7));
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("Barrier"), "{err}");
    }

    #[test]
    fn drained_chain_with_moved_tip_is_caught() {
        let mut cache = ReuseCache::default();
        cache.insert(&keyed_ticket(5), &rows());
        // Empty chain but a tip that wandered off the compute stamp.
        for e in cache.entries_mut() {
            e.delta_stamps = vec![8];
        }
        let report = check_cache(&cache, &live(5));
        let err = format!("{:?}", report.into_result());
        assert!(err.contains("compute-time stamp"), "{err}");
    }
}
