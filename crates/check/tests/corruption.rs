//! Negative tests: corrupt each structure through its feature-gated raw
//! mutation hooks and demand the checker rejects it with a precise
//! diagnostic — structure, node/bucket id, and the violated invariant.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_check::log_checks::check_log_buffer;
use mmdb_check::DeepCheck;
use mmdb_index::adapter::NaturalAdapter;
use mmdb_index::traits::{OrderedIndex, UnorderedIndex};
use mmdb_index::{ChainedBucketHash, TTree, TTreeConfig};
use mmdb_recovery::{PartitionKey, StableLogBuffer};

fn ttree(n: u64) -> TTree<NaturalAdapter<u64>> {
    let mut t = TTree::new(NaturalAdapter::new(), TTreeConfig::with_node_size(4));
    for k in 0..n {
        t.insert(k);
    }
    t
}

#[test]
fn ttree_overfilled_node_is_rejected() {
    let mut t = ttree(40);
    let root = t.raw_root().unwrap();
    let max = t.config().max_count;
    // Append in-order duplicates of the node maximum: sortedness stays
    // intact, so only the occupancy invariant is violated.
    let items = t.raw_items_mut(root);
    let top = items[items.len() - 1];
    while items.len() <= max {
        items.push(top);
    }
    let msg = t.deep_check().into_result().unwrap_err();
    assert!(msg.contains("[ttree]"), "{msg}");
    assert!(msg.contains("node-occupancy-max"), "{msg}");
    assert!(msg.contains(&format!("node {root}")), "{msg}");
    assert!(msg.contains(&format!("max_count {max}")), "{msg}");
}

#[test]
fn ttree_underfilled_internal_node_is_rejected() {
    let mut t = ttree(100);
    // Pick an internal node (both children) whose GLB donor has spares.
    let internal = t
        .raw_nodes()
        .into_iter()
        .find(|v| v.left.is_some() && v.right.is_some())
        .expect("a 100-key tree with node size 4 has internal nodes");
    let id = internal.id;
    let min = t.config().min_count();
    t.raw_items_mut(id).truncate(min - 1);
    let msg = t.deep_check().into_result().unwrap_err();
    assert!(msg.contains("[ttree]"), "{msg}");
    assert!(msg.contains("node-occupancy-min"), "{msg}");
    assert!(msg.contains(&format!("node {id}")), "{msg}");
}

/// Bulk construction must not be a loophole around the occupancy
/// invariant: a correct `build_from_sorted` passes the deep check, and
/// a build deliberately under-filling its nodes (fill below
/// `min_count`) is flagged on the same `node-occupancy-min` finding
/// incremental corruption is.
#[test]
fn ttree_underfilled_bulk_build_is_rejected() {
    let config = TTreeConfig::with_node_size(8);
    // NaturalAdapter's entry tags are the default 0, so pre-tagged
    // pairs carry 0 (bulk build requires tags agree with the adapter).
    let tagged: Vec<(u64, u64)> = (0..200u64).map(|k| (0, k)).collect();
    let good = TTree::build_from_sorted(NaturalAdapter::new(), config, tagged.clone());
    good.validate().unwrap();
    good.deep_check().assert_ok();
    // Fill 2 per node: internal nodes sit far below min_count while
    // their GLB donor leaves have entries to spare.
    let min = config.min_count();
    assert!(2 < min, "fill must undercut min_count {min}");
    let bad = TTree::raw_build_with_fill(NaturalAdapter::new(), config, tagged, 2);
    let msg = bad.deep_check().into_result().unwrap_err();
    assert!(msg.contains("[ttree]"), "{msg}");
    assert!(msg.contains("node-occupancy-min"), "{msg}");
    assert!(msg.contains(&format!("min_count {min}")), "{msg}");
}

#[test]
fn ttree_swapped_keys_are_rejected() {
    let mut t = ttree(40);
    let victim = t
        .raw_nodes()
        .into_iter()
        .find(|v| v.entries.len() >= 2)
        .expect("node-size-4 tree has multi-entry nodes");
    let id = victim.id;
    t.raw_items_mut(id).swap(0, 1);
    let msg = t.deep_check().into_result().unwrap_err();
    assert!(msg.contains("[ttree]"), "{msg}");
    assert!(msg.contains("key-order"), "{msg}");
    assert!(msg.contains(&format!("node {id}")), "{msg}");
}

#[test]
fn chained_hash_swapped_bucket_heads_are_rejected() {
    let mut h: ChainedBucketHash<NaturalAdapter<u64>> =
        ChainedBucketHash::with_capacity(NaturalAdapter::new(), 16);
    for k in 0..64u64 {
        UnorderedIndex::insert(&mut h, k);
    }
    // Two non-empty buckets whose chains now live under the wrong head.
    let full: Vec<usize> = h
        .raw_buckets()
        .into_iter()
        .filter(|b| !b.entries.is_empty())
        .map(|b| b.bucket)
        .collect();
    let (a, b) = (full[0], full[1]);
    h.raw_swap_heads(a, b);
    let msg = h.deep_check().into_result().unwrap_err();
    assert!(msg.contains("[chained-hash]"), "{msg}");
    assert!(msg.contains("bucket-addressing"), "{msg}");
    assert!(
        msg.contains(&format!("bucket {a}")) && msg.contains(&format!("bucket {b}")),
        "{msg}"
    );
}

#[test]
fn log_lsn_regression_is_rejected() {
    let mut buf = StableLogBuffer::new();
    for txn in 0..4u64 {
        buf.log(txn, PartitionKey::new(1, txn as u32), vec![0xAB; 16]);
        buf.commit(txn);
    }
    check_log_buffer(&buf).assert_ok();
    // Rewind one committed record's LSN: monotonicity breaks at a known
    // position and the duplicate shows up too.
    let lsn0 = buf.committed_records()[0].lsn;
    buf.committed_records_mut()[2].lsn = lsn0;
    let msg = check_log_buffer(&buf).into_result().unwrap_err();
    assert!(msg.contains("[log]"), "{msg}");
    assert!(msg.contains("lsn-monotone"), "{msg}");
    assert!(msg.contains("lsn-duplicate"), "{msg}");
    assert!(msg.contains(&format!("lsn {lsn0}")), "{msg}");
}
