//! Regression test for the version-stamp discipline: `mmdb-lint`, run
//! with the real workspace policy, must flag a Relation mutation that
//! reaches tuple storage without bumping a partition version — the
//! exact hazard that would silently stale the reuse cache.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_lint::policy::Policy;
use mmdb_lint::SourceFile;

#[test]
fn bump_free_mutation_is_reported_at_the_exact_location() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let policy_text = std::fs::read_to_string(manifest.join("../../mmdb-lint.policy")).unwrap();
    let policy = Policy::parse(&policy_text).unwrap();
    let fixture = std::fs::read_to_string(manifest.join("tests/fixtures/bump_free.rs")).unwrap();
    // Present the fixture as if it lived in this crate's src tree so the
    // real policy's path scoping applies to it.
    let virtual_path = "crates/storage/src/zz_bump_free_fixture.rs";
    let fn_line = 1 + fixture
        .lines()
        .position(|l| l.contains("pub fn relocate"))
        .unwrap() as u32;

    let report = mmdb_lint::lint(
        &[SourceFile {
            path: virtual_path.to_string(),
            text: fixture,
        }],
        &policy,
    );

    assert!(
        report
            .findings
            .iter()
            .any(|d| d.rule == "version-bump" && d.file == virtual_path && d.line == fn_line),
        "expected a version-bump finding at {virtual_path}:{fn_line}; got:\n{}",
        report.render()
    );
    // `forward` itself (the sink) must not be flagged — only the
    // mutating entry that reaches it bump-free.
    assert_eq!(report.findings.len(), 1, "report:\n{}", report.render());
}

#[test]
fn adding_the_bump_silences_the_finding() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let policy_text = std::fs::read_to_string(manifest.join("../../mmdb-lint.policy")).unwrap();
    let policy = Policy::parse(&policy_text).unwrap();
    let fixture = std::fs::read_to_string(manifest.join("tests/fixtures/bump_free.rs")).unwrap();
    let fixed = fixture.replace(
        "self.forward(slot);",
        "self.forward(slot);\n        self.mark_dirty();",
    );
    assert_ne!(fixture, fixed);
    let report = mmdb_lint::lint(
        &[SourceFile {
            path: "crates/storage/src/zz_bump_free_fixture.rs".to_string(),
            text: fixed,
        }],
        &policy,
    );
    assert!(
        report.findings.is_empty(),
        "bumped variant must be clean; got:\n{}",
        report.render()
    );
}
