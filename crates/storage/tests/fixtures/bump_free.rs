//! Fixture for the version-bump regression test: a Relation method that
//! reaches a tuple-storage write without ever bumping a partition
//! version. Never compiled — linted under a virtual src path.

pub struct Relation;

impl Relation {
    fn forward(&mut self, _slot: u32) {}

    /// Bump-free mutation: reaches `forward` but neither `mark_dirty`
    /// nor `versions`. The linter must flag this function.
    pub fn relocate(&mut self, slot: u32) {
        self.forward(slot);
    }
}
