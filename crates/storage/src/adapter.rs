//! Index adapters over relations: the §2.2 "main memory index" style.
//!
//! *"a single tuple pointer provides the index with access to both the
//! attribute value of a tuple and the tuple itself"* — an index entry is a
//! [`TupleId`]; comparisons dereference it through the relation to reach
//! the indexed attribute. [`AttrAdapter`] is that dereference.

use crate::relation::Relation;
use crate::value::{TupleId, Value};
use mmdb_index::adapter::{mix64, Adapter, HashAdapter};
use std::cmp::Ordering;

/// An owned probe key for index searches over relation attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyValue {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
    /// Tuple-pointer key (for pointer-comparison joins, §2.1 Query 2).
    Ptr(TupleId),
}

impl KeyValue {
    /// Total order consistent with [`AttrAdapter`]'s entry comparisons.
    #[must_use]
    pub fn cmp_value(&self, v: &Value<'_>) -> Ordering {
        match (v, self) {
            (Value::Int(a), KeyValue::Int(b)) => a.cmp(b),
            (Value::Str(a), KeyValue::Str(b)) => (*a).cmp(b.as_str()),
            (Value::Ptr(a), KeyValue::Ptr(b)) => a.unwrap_or_else(TupleId::null).cmp(b),
            // Heterogeneous comparisons order by type tag; they only occur
            // on user error (probing an int index with a string).
            _ => rank_value(v).cmp(&rank_key(self)),
        }
    }

    /// Hash consistent with [`AttrAdapter`]'s entry hashing.
    #[must_use]
    pub fn hash(&self) -> u64 {
        match self {
            KeyValue::Int(i) => mix64(*i as u64),
            KeyValue::Str(s) => hash_str(s),
            KeyValue::Ptr(t) => hash_tid(*t),
        }
    }
}

impl From<i64> for KeyValue {
    fn from(i: i64) -> Self {
        KeyValue::Int(i)
    }
}

impl From<&str> for KeyValue {
    fn from(s: &str) -> Self {
        KeyValue::Str(s.to_string())
    }
}

impl From<TupleId> for KeyValue {
    fn from(t: TupleId) -> Self {
        KeyValue::Ptr(t)
    }
}

fn rank_value(v: &Value<'_>) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Str(_) => 1,
        Value::Ptr(_) => 2,
        Value::PtrList(_) => 3,
    }
}

fn rank_key(k: &KeyValue) -> u8 {
    match k {
        KeyValue::Int(_) => 0,
        KeyValue::Str(_) => 1,
        KeyValue::Ptr(_) => 2,
    }
}

/// FNV-1a over string bytes.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

fn hash_tid(t: TupleId) -> u64 {
    mix64((u64::from(t.partition) << 32) | u64::from(t.slot))
}

/// Hash a field value, consistently with [`KeyValue::hash`]. Public so
/// query operators (hash join build, hash-based duplicate elimination) can
/// hash extracted attribute values directly.
#[must_use]
pub fn value_hash(v: &Value<'_>) -> u64 {
    match v {
        Value::Int(i) => mix64(*i as u64),
        Value::Str(s) => hash_str(s),
        Value::Ptr(p) => hash_tid(p.unwrap_or_else(TupleId::null)),
        Value::PtrList(l) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for t in l {
                h ^= hash_tid(*t);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            mix64(h)
        }
    }
}

/// Adapter that dereferences [`TupleId`] entries to an attribute of one
/// relation.
#[derive(Clone, Copy)]
pub struct AttrAdapter<'a> {
    rel: &'a Relation,
    attr: usize,
}

impl<'a> AttrAdapter<'a> {
    /// Index `rel` on attribute `attr`.
    #[must_use]
    pub fn new(rel: &'a Relation, attr: usize) -> Self {
        AttrAdapter { rel, attr }
    }

    /// Index `rel` on the named attribute.
    pub fn by_name(rel: &'a Relation, name: &str) -> Result<Self, crate::StorageError> {
        Ok(AttrAdapter {
            rel,
            attr: rel.schema().index_of(name)?,
        })
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &'a Relation {
        self.rel
    }

    /// The indexed attribute position.
    #[must_use]
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Extract the indexed attribute of a tuple.
    #[must_use]
    pub fn value_of(&self, tid: TupleId) -> Value<'a> {
        // The Adapter trait's comparators are infallible by design (§2.2:
        // an index entry *is* a tuple pointer, so dereferencing cannot
        // fail in a consistent database). A dead entry here means the
        // index and relation have drifted apart -- exactly the invariant
        // `mmdb-check`'s reachability pass verifies -- so panicking with
        // the violated invariant is the only sound response.
        match self.rel.field(tid, self.attr) {
            Ok(v) => v,
            Err(e) => panic!("index entry {tid:?} must reference a live tuple: {e}"),
        }
    }
}

impl Adapter for AttrAdapter<'_> {
    type Entry = TupleId;
    type Key = KeyValue;

    fn cmp_entries(&self, a: &TupleId, b: &TupleId) -> Ordering {
        self.value_of(*a).total_cmp(&self.value_of(*b))
    }

    fn cmp_entry_key(&self, e: &TupleId, key: &KeyValue) -> Ordering {
        key.cmp_value(&self.value_of(*e))
    }
}

impl HashAdapter for AttrAdapter<'_> {
    fn hash_entry(&self, e: &TupleId) -> u64 {
        value_hash(&self.value_of(*e))
    }

    fn hash_key(&self, key: &KeyValue) -> u64 {
        key.hash()
    }
}

/// Adapter that indexes the rows of a **temporary list** (§2.3: *"it is
/// also possible to have an index on a temporary list"*). Entries are row
/// numbers into the list; the key is one field of one source relation,
/// reached through the row's tuple pointer.
#[derive(Clone, Copy)]
pub struct TempListAdapter<'a> {
    list: &'a crate::templist::TempList,
    rel: &'a Relation,
    /// Which source column of the list holds the tuple pointer.
    source: usize,
    /// Which attribute of that source relation is the key.
    attr: usize,
}

impl<'a> TempListAdapter<'a> {
    /// Index `list` on `rel`'s attribute `attr`, reached through source
    /// column `source` of each row.
    #[must_use]
    pub fn new(
        list: &'a crate::templist::TempList,
        rel: &'a Relation,
        source: usize,
        attr: usize,
    ) -> Self {
        TempListAdapter {
            list,
            rel,
            source,
            attr,
        }
    }

    /// Extract the key value of row `row`.
    #[must_use]
    pub fn value_of(&self, row: u32) -> Value<'a> {
        let tid = self.list.row(row as usize)[self.source];
        // Infallible for the same reason as `AttrAdapter::value_of`: a
        // temp-list row that no longer dereferences is index/relation
        // drift, which the verification layer reports as a violation.
        match self.rel.field(tid, self.attr) {
            Ok(v) => v,
            Err(e) => panic!("temp-list row {tid:?} must reference a live tuple: {e}"),
        }
    }
}

impl Adapter for TempListAdapter<'_> {
    type Entry = u32;
    type Key = KeyValue;

    fn cmp_entries(&self, a: &u32, b: &u32) -> Ordering {
        self.value_of(*a).total_cmp(&self.value_of(*b))
    }

    fn cmp_entry_key(&self, e: &u32, key: &KeyValue) -> Ordering {
        key.cmp_value(&self.value_of(*e))
    }
}

impl HashAdapter for TempListAdapter<'_> {
    fn hash_entry(&self, e: &u32) -> u64 {
        value_hash(&self.value_of(*e))
    }

    fn hash_key(&self, key: &KeyValue) -> u64 {
        key.hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use crate::schema::{AttrType, Schema};
    use crate::value::OwnedValue;
    use mmdb_index::traits::OrderedIndex;
    use mmdb_index::{TTree, TTreeConfig};

    fn people() -> (Relation, Vec<TupleId>) {
        let mut r = Relation::new(
            "people",
            Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)]),
            PartitionConfig::default(),
        );
        let names = ["Dave", "Suzan", "Yaman", "Jane", "Cindy"];
        let ages = [24i64, 27, 54, 47, 22];
        let tids = names
            .iter()
            .zip(ages)
            .map(|(n, a)| {
                r.insert(&[OwnedValue::Str((*n).into()), OwnedValue::Int(a)])
                    .unwrap()
            })
            .collect();
        (r, tids)
    }

    #[test]
    fn cmp_entries_orders_by_attribute() {
        let (r, tids) = people();
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        // Dave(24) < Suzan(27)
        assert_eq!(by_age.cmp_entries(&tids[0], &tids[1]), Ordering::Less);
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        // "Cindy" < "Dave"
        assert_eq!(by_name.cmp_entries(&tids[4], &tids[0]), Ordering::Less);
    }

    #[test]
    fn key_comparisons() {
        let (r, tids) = people();
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        assert_eq!(
            by_age.cmp_entry_key(&tids[0], &KeyValue::Int(24)),
            Ordering::Equal
        );
        assert_eq!(
            by_age.cmp_entry_key(&tids[0], &KeyValue::Int(30)),
            Ordering::Less
        );
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        assert_eq!(
            by_name.cmp_entry_key(&tids[1], &KeyValue::from("Suzan")),
            Ordering::Equal
        );
    }

    #[test]
    fn hash_agreement_entry_vs_key() {
        let (r, tids) = people();
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        assert_eq!(
            by_name.hash_entry(&tids[2]),
            by_name.hash_key(&KeyValue::from("Yaman"))
        );
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        assert_eq!(
            by_age.hash_entry(&tids[3]),
            by_age.hash_key(&KeyValue::Int(47))
        );
    }

    #[test]
    fn ttree_over_relation_attribute() {
        // End-to-end §2.2: a T-Tree whose entries are tuple pointers.
        let (r, tids) = people();
        let adapter = AttrAdapter::by_name(&r, "age").unwrap();
        let mut idx = TTree::new(adapter, TTreeConfig::with_node_size(4));
        for t in &tids {
            idx.insert(*t);
        }
        idx.validate().unwrap();
        let hit = idx.search(&KeyValue::Int(54)).unwrap();
        assert_eq!(r.field_by_name(hit, "name").unwrap(), Value::Str("Yaman"));
        // Ordered scan returns people in age order.
        let mut ages = Vec::new();
        idx.scan(&mut |t| {
            ages.push(r.field_by_name(*t, "age").unwrap().as_int().unwrap());
        });
        assert_eq!(ages, vec![22, 24, 27, 47, 54]);
    }

    #[test]
    fn templist_adapter_indexes_rows() {
        use crate::templist::TempList;
        let (r, tids) = people();
        // An arity-1 temp list of everyone, indexed on age.
        let list = TempList::from_tids(tids);
        let ad = TempListAdapter::new(&list, &r, 0, 1);
        let mut idx = TTree::new(ad, TTreeConfig::with_node_size(3));
        for row in 0..list.len() as u32 {
            idx.insert(row);
        }
        idx.validate().unwrap();
        // Search by age through the temp-list index.
        let row = idx.search(&KeyValue::Int(47)).unwrap();
        assert_eq!(
            r.field(list.row(row as usize)[0], 0).unwrap(),
            Value::Str("Jane")
        );
        // Ordered scan respects age order.
        let mut ages = Vec::new();
        idx.scan(&mut |row| {
            ages.push(
                r.field(list.row(*row as usize)[0], 1)
                    .unwrap()
                    .as_int()
                    .unwrap(),
            );
        });
        assert_eq!(ages, vec![22, 24, 27, 47, 54]);
    }

    #[test]
    fn key_value_conversions() {
        assert_eq!(KeyValue::from(5i64), KeyValue::Int(5));
        assert_eq!(KeyValue::from("x"), KeyValue::Str("x".into()));
        let t = TupleId::new(1, 2);
        assert_eq!(KeyValue::from(t), KeyValue::Ptr(t));
    }
}
