//! Index adapters over relations: the §2.2 "main memory index" style.
//!
//! *"a single tuple pointer provides the index with access to both the
//! attribute value of a tuple and the tuple itself"* — an index entry is a
//! [`TupleId`]; comparisons dereference it through the relation to reach
//! the indexed attribute. [`AttrAdapter`] is that dereference.

use crate::relation::Relation;
use crate::value::{TupleId, Value};
use mmdb_index::adapter::{mix64, Adapter, HashAdapter};
use std::cmp::Ordering;

/// An owned probe key for index searches over relation attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyValue {
    /// Integer key.
    Int(i64),
    /// String key.
    Str(String),
    /// Tuple-pointer key (for pointer-comparison joins, §2.1 Query 2).
    Ptr(TupleId),
}

impl KeyValue {
    /// Total order consistent with [`AttrAdapter`]'s entry comparisons.
    #[must_use]
    pub fn cmp_value(&self, v: &Value<'_>) -> Ordering {
        match (v, self) {
            (Value::Int(a), KeyValue::Int(b)) => a.cmp(b),
            (Value::Str(a), KeyValue::Str(b)) => (*a).cmp(b.as_str()),
            (Value::Ptr(a), KeyValue::Ptr(b)) => a.unwrap_or_else(TupleId::null).cmp(b),
            // Heterogeneous comparisons order by type tag; they only occur
            // on user error (probing an int index with a string).
            _ => rank_value(v).cmp(&rank_key(self)),
        }
    }

    /// Hash consistent with [`AttrAdapter`]'s entry hashing.
    #[must_use]
    pub fn hash(&self) -> u64 {
        match self {
            KeyValue::Int(i) => mix64(*i as u64),
            KeyValue::Str(s) => hash_str(s),
            KeyValue::Ptr(t) => hash_tid(*t),
        }
    }

    /// Order tag consistent with [`value_order_tag`] (a schema keeps each
    /// attribute homogeneous, so the per-variant embeddings never mix
    /// within one index).
    #[must_use]
    pub fn order_tag(&self) -> u64 {
        match self {
            KeyValue::Int(i) => int_order_tag(*i),
            KeyValue::Str(s) => str_order_tag(s),
            KeyValue::Ptr(t) => tid_order_tag(*t),
        }
    }
}

impl From<i64> for KeyValue {
    fn from(i: i64) -> Self {
        KeyValue::Int(i)
    }
}

impl From<&str> for KeyValue {
    fn from(s: &str) -> Self {
        KeyValue::Str(s.to_string())
    }
}

impl From<TupleId> for KeyValue {
    fn from(t: TupleId) -> Self {
        KeyValue::Ptr(t)
    }
}

fn rank_value(v: &Value<'_>) -> u8 {
    match v {
        Value::Int(_) => 0,
        Value::Str(_) => 1,
        Value::Ptr(_) => 2,
        Value::PtrList(_) => 3,
    }
}

fn rank_key(k: &KeyValue) -> u8 {
    match k {
        KeyValue::Int(_) => 0,
        KeyValue::Str(_) => 1,
        KeyValue::Ptr(_) => 2,
    }
}

/// FNV-1a over string bytes.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

fn hash_tid(t: TupleId) -> u64 {
    mix64((u64::from(t.partition) << 32) | u64::from(t.slot))
}

/// Order-preserving embedding of an `i64` into `u64` (flip the sign bit).
fn int_order_tag(i: i64) -> u64 {
    (i as u64) ^ (1 << 63)
}

/// First eight bytes of a string, big-endian, zero-padded: numeric order
/// on the tag is lexicographic order on the (padded) prefix, so unequal
/// tags order exactly like the strings and shared-prefix ties come back
/// equal (undecided).
fn str_order_tag(s: &str) -> u64 {
    let mut buf = [0u8; 8];
    let b = s.as_bytes();
    let n = b.len().min(8);
    buf[..n].copy_from_slice(&b[..n]);
    u64::from_be_bytes(buf)
}

/// Order-preserving embedding of a tuple id (partition-major, matching
/// its derived `Ord`).
fn tid_order_tag(t: TupleId) -> u64 {
    (u64::from(t.partition) << 32) | u64::from(t.slot)
}

/// [`mmdb_index::adapter::Adapter::entry_tag`] for a field value: a
/// monotone summary comparable without re-dereferencing the tuple. A
/// pointer list has no single key; it tags as 0 (always undecided).
#[must_use]
pub fn value_order_tag(v: &Value<'_>) -> u64 {
    match v {
        Value::Int(i) => int_order_tag(*i),
        Value::Str(s) => str_order_tag(s),
        Value::Ptr(p) => tid_order_tag(p.unwrap_or_else(TupleId::null)),
        Value::PtrList(_) => 0,
    }
}

/// Hash a field value, consistently with [`KeyValue::hash`]. Public so
/// query operators (hash join build, hash-based duplicate elimination) can
/// hash extracted attribute values directly.
#[must_use]
pub fn value_hash(v: &Value<'_>) -> u64 {
    match v {
        Value::Int(i) => mix64(*i as u64),
        Value::Str(s) => hash_str(s),
        Value::Ptr(p) => hash_tid(p.unwrap_or_else(TupleId::null)),
        Value::PtrList(l) => {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for t in l {
                h ^= hash_tid(*t);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            mix64(h)
        }
    }
}

/// Adapter that dereferences [`TupleId`] entries to an attribute of one
/// relation.
#[derive(Clone, Copy)]
pub struct AttrAdapter<'a> {
    rel: &'a Relation,
    attr: usize,
}

impl<'a> AttrAdapter<'a> {
    /// Index `rel` on attribute `attr`.
    #[must_use]
    pub fn new(rel: &'a Relation, attr: usize) -> Self {
        AttrAdapter { rel, attr }
    }

    /// Index `rel` on the named attribute.
    pub fn by_name(rel: &'a Relation, name: &str) -> Result<Self, crate::StorageError> {
        Ok(AttrAdapter {
            rel,
            attr: rel.schema().index_of(name)?,
        })
    }

    /// The underlying relation.
    #[must_use]
    pub fn relation(&self) -> &'a Relation {
        self.rel
    }

    /// The indexed attribute position.
    #[must_use]
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Extract the indexed attribute of a tuple.
    #[must_use]
    pub fn value_of(&self, tid: TupleId) -> Value<'a> {
        // The Adapter trait's comparators are infallible by design (§2.2:
        // an index entry *is* a tuple pointer, so dereferencing cannot
        // fail in a consistent database). A dead entry here means the
        // index and relation have drifted apart -- exactly the invariant
        // `mmdb-check`'s reachability pass verifies -- so panicking with
        // the violated invariant is the only sound response.
        match self.rel.field(tid, self.attr) {
            Ok(v) => v,
            Err(e) => panic!("index entry {tid:?} must reference a live tuple: {e}"),
        }
    }
}

impl Adapter for AttrAdapter<'_> {
    type Entry = TupleId;
    type Key = KeyValue;

    fn cmp_entries(&self, a: &TupleId, b: &TupleId) -> Ordering {
        self.value_of(*a).total_cmp(&self.value_of(*b))
    }

    fn cmp_entry_key(&self, e: &TupleId, key: &KeyValue) -> Ordering {
        key.cmp_value(&self.value_of(*e))
    }

    fn entry_tag(&self, e: &TupleId) -> u64 {
        value_order_tag(&self.value_of(*e))
    }

    fn key_tag(&self, key: &KeyValue) -> u64 {
        key.order_tag()
    }
}

impl HashAdapter for AttrAdapter<'_> {
    fn hash_entry(&self, e: &TupleId) -> u64 {
        value_hash(&self.value_of(*e))
    }

    fn hash_key(&self, key: &KeyValue) -> u64 {
        key.hash()
    }
}

/// Adapter that indexes the rows of a **temporary list** (§2.3: *"it is
/// also possible to have an index on a temporary list"*). Entries are row
/// numbers into the list; the key is one field of one source relation,
/// reached through the row's tuple pointer.
#[derive(Clone, Copy)]
pub struct TempListAdapter<'a> {
    list: &'a crate::templist::TempList,
    rel: &'a Relation,
    /// Which source column of the list holds the tuple pointer.
    source: usize,
    /// Which attribute of that source relation is the key.
    attr: usize,
}

impl<'a> TempListAdapter<'a> {
    /// Index `list` on `rel`'s attribute `attr`, reached through source
    /// column `source` of each row.
    #[must_use]
    pub fn new(
        list: &'a crate::templist::TempList,
        rel: &'a Relation,
        source: usize,
        attr: usize,
    ) -> Self {
        TempListAdapter {
            list,
            rel,
            source,
            attr,
        }
    }

    /// Extract the key value of row `row`.
    #[must_use]
    pub fn value_of(&self, row: u32) -> Value<'a> {
        let tid = self.list.row(row as usize)[self.source];
        // Infallible for the same reason as `AttrAdapter::value_of`: a
        // temp-list row that no longer dereferences is index/relation
        // drift, which the verification layer reports as a violation.
        match self.rel.field(tid, self.attr) {
            Ok(v) => v,
            Err(e) => panic!("temp-list row {tid:?} must reference a live tuple: {e}"),
        }
    }
}

impl Adapter for TempListAdapter<'_> {
    type Entry = u32;
    type Key = KeyValue;

    fn cmp_entries(&self, a: &u32, b: &u32) -> Ordering {
        self.value_of(*a).total_cmp(&self.value_of(*b))
    }

    fn cmp_entry_key(&self, e: &u32, key: &KeyValue) -> Ordering {
        key.cmp_value(&self.value_of(*e))
    }

    fn entry_tag(&self, e: &u32) -> u64 {
        value_order_tag(&self.value_of(*e))
    }

    fn key_tag(&self, key: &KeyValue) -> u64 {
        key.order_tag()
    }
}

impl HashAdapter for TempListAdapter<'_> {
    fn hash_entry(&self, e: &u32) -> u64 {
        value_hash(&self.value_of(*e))
    }

    fn hash_key(&self, key: &KeyValue) -> u64 {
        key.hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use crate::schema::{AttrType, Schema};
    use crate::value::OwnedValue;
    use mmdb_index::traits::OrderedIndex;
    use mmdb_index::{TTree, TTreeConfig};

    fn people() -> (Relation, Vec<TupleId>) {
        let mut r = Relation::new(
            "people",
            Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)]),
            PartitionConfig::default(),
        );
        let names = ["Dave", "Suzan", "Yaman", "Jane", "Cindy"];
        let ages = [24i64, 27, 54, 47, 22];
        let tids = names
            .iter()
            .zip(ages)
            .map(|(n, a)| {
                r.insert(&[OwnedValue::Str((*n).into()), OwnedValue::Int(a)])
                    .unwrap()
            })
            .collect();
        (r, tids)
    }

    #[test]
    fn cmp_entries_orders_by_attribute() {
        let (r, tids) = people();
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        // Dave(24) < Suzan(27)
        assert_eq!(by_age.cmp_entries(&tids[0], &tids[1]), Ordering::Less);
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        // "Cindy" < "Dave"
        assert_eq!(by_name.cmp_entries(&tids[4], &tids[0]), Ordering::Less);
    }

    #[test]
    fn key_comparisons() {
        let (r, tids) = people();
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        assert_eq!(
            by_age.cmp_entry_key(&tids[0], &KeyValue::Int(24)),
            Ordering::Equal
        );
        assert_eq!(
            by_age.cmp_entry_key(&tids[0], &KeyValue::Int(30)),
            Ordering::Less
        );
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        assert_eq!(
            by_name.cmp_entry_key(&tids[1], &KeyValue::from("Suzan")),
            Ordering::Equal
        );
    }

    #[test]
    fn hash_agreement_entry_vs_key() {
        let (r, tids) = people();
        let by_name = AttrAdapter::by_name(&r, "name").unwrap();
        assert_eq!(
            by_name.hash_entry(&tids[2]),
            by_name.hash_key(&KeyValue::from("Yaman"))
        );
        let by_age = AttrAdapter::by_name(&r, "age").unwrap();
        assert_eq!(
            by_age.hash_entry(&tids[3]),
            by_age.hash_key(&KeyValue::Int(47))
        );
    }

    #[test]
    fn ttree_over_relation_attribute() {
        // End-to-end §2.2: a T-Tree whose entries are tuple pointers.
        let (r, tids) = people();
        let adapter = AttrAdapter::by_name(&r, "age").unwrap();
        let mut idx = TTree::new(adapter, TTreeConfig::with_node_size(4));
        for t in &tids {
            idx.insert(*t);
        }
        idx.validate().unwrap();
        let hit = idx.search(&KeyValue::Int(54)).unwrap();
        assert_eq!(r.field_by_name(hit, "name").unwrap(), Value::Str("Yaman"));
        // Ordered scan returns people in age order.
        let mut ages = Vec::new();
        idx.scan(&mut |t| {
            ages.push(r.field_by_name(*t, "age").unwrap().as_int().unwrap());
        });
        assert_eq!(ages, vec![22, 24, 27, 47, 54]);
    }

    #[test]
    fn templist_adapter_indexes_rows() {
        use crate::templist::TempList;
        let (r, tids) = people();
        // An arity-1 temp list of everyone, indexed on age.
        let list = TempList::from_tids(tids);
        let ad = TempListAdapter::new(&list, &r, 0, 1);
        let mut idx = TTree::new(ad, TTreeConfig::with_node_size(3));
        for row in 0..list.len() as u32 {
            idx.insert(row);
        }
        idx.validate().unwrap();
        // Search by age through the temp-list index.
        let row = idx.search(&KeyValue::Int(47)).unwrap();
        assert_eq!(
            r.field(list.row(row as usize)[0], 0).unwrap(),
            Value::Str("Jane")
        );
        // Ordered scan respects age order.
        let mut ages = Vec::new();
        idx.scan(&mut |row| {
            ages.push(
                r.field(list.row(*row as usize)[0], 1)
                    .unwrap()
                    .as_int()
                    .unwrap(),
            );
        });
        assert_eq!(ages, vec![22, 24, 27, 47, 54]);
    }

    #[test]
    fn order_tags_are_monotone_with_comparisons() {
        // Unequal tags must order exactly like the values; equal tags
        // are allowed only for genuinely tied prefixes.
        let ints = [i64::MIN, -7, -1, 0, 1, 42, i64::MAX];
        for w in ints.windows(2) {
            assert!(
                KeyValue::Int(w[0]).order_tag() < KeyValue::Int(w[1]).order_tag(),
                "{} vs {}",
                w[0],
                w[1]
            );
        }
        let strs = ["", "a", "ab", "abcdefgh", "abcdefghZZZ", "b"];
        for (i, a) in strs.iter().enumerate() {
            for b in &strs[i + 1..] {
                assert!(
                    KeyValue::from(*a).order_tag() <= KeyValue::from(*b).order_tag(),
                    "{a:?} vs {b:?}"
                );
            }
        }
        // Shared 8-byte prefix: the tag ties (undecided), never inverts.
        assert_eq!(
            KeyValue::from("abcdefghAAA").order_tag(),
            KeyValue::from("abcdefghZZZ").order_tag()
        );
        assert!(
            KeyValue::Ptr(TupleId::new(0, 9)).order_tag()
                < KeyValue::Ptr(TupleId::new(1, 0)).order_tag()
        );
    }

    #[test]
    fn tagged_descent_matches_untagged() {
        // Differential: a T-Tree probed through the tag-caching adapter
        // must behave identically to one whose adapter keeps the default
        // (always-undecided) tags.
        struct Untagged<'a>(AttrAdapter<'a>);
        impl Adapter for Untagged<'_> {
            type Entry = TupleId;
            type Key = KeyValue;
            fn cmp_entries(&self, a: &TupleId, b: &TupleId) -> Ordering {
                self.0.cmp_entries(a, b)
            }
            fn cmp_entry_key(&self, e: &TupleId, key: &KeyValue) -> Ordering {
                self.0.cmp_entry_key(e, key)
            }
            // entry_tag/key_tag deliberately left at the default 0.
        }

        let mut r = Relation::new(
            "t",
            Schema::of(&[("name", AttrType::Str), ("v", AttrType::Int)]),
            PartitionConfig::default(),
        );
        let tids: Vec<TupleId> = (0..500i64)
            .map(|i| {
                r.insert(&[
                    OwnedValue::Str(format!("name-{:03}", (i * 131) % 500)),
                    OwnedValue::Int((i * 37) % 200),
                ])
                .unwrap()
            })
            .collect();
        for attr in ["name", "v"] {
            let mut tagged = TTree::new(
                AttrAdapter::by_name(&r, attr).unwrap(),
                TTreeConfig::with_node_size(6),
            );
            let mut plain = TTree::new(
                Untagged(AttrAdapter::by_name(&r, attr).unwrap()),
                TTreeConfig::with_node_size(6),
            );
            for t in &tids {
                tagged.insert(*t);
                plain.insert(*t);
            }
            tagged.validate().unwrap();
            plain.validate().unwrap();
            for i in 0..200i64 {
                let key = if attr == "v" {
                    KeyValue::Int(i)
                } else {
                    KeyValue::Str(format!("name-{:03}", i))
                };
                let mut a = Vec::new();
                let mut b = Vec::new();
                tagged.search_all(&key, &mut a);
                plain.search_all(&key, &mut b);
                assert_eq!(a, b, "{attr} key {key:?}");
            }
            for t in tids.iter().step_by(3) {
                assert!(tagged.delete_entry(t));
                assert!(plain.delete_entry(t));
            }
            tagged.validate().unwrap();
            plain.validate().unwrap();
            assert_eq!(
                tagged.iter().collect::<Vec<_>>(),
                plain.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn key_value_conversions() {
        assert_eq!(KeyValue::from(5i64), KeyValue::Int(5));
        assert_eq!(KeyValue::from("x"), KeyValue::Str("x".into()));
        let t = TupleId::new(1, 2);
        assert_eq!(KeyValue::from(t), KeyValue::Ptr(t));
    }
}
