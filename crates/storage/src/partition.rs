//! Partitions: the unit of recovery (§2.1).
//!
//! A partition is a fixed-budget region "on the order of one or two disk
//! tracks" holding tuple slots plus a heap for variable-length fields.
//! The byte layout matters here — the recovery subsystem checkpoints and
//! reloads whole partitions as byte images, and the lock manager locks at
//! partition granularity (§2.4).
//!
//! ## Slot layout
//!
//! Every tuple occupies `8 × arity` bytes, one 8-byte cell per attribute:
//!
//! | type    | encoding                                               |
//! |---------|--------------------------------------------------------|
//! | int     | `i64` little-endian                                    |
//! | str     | `u32` heap offset, `u32` length                        |
//! | ptr     | `u32` partition, `u32` slot (`MAX,MAX` = NULL)         |
//! | ptrlist | `u32` heap offset, `u32` element count (8 bytes each)  |
//!
//! A tuple never moves when a variable-length field grows: the new bytes
//! are appended to the heap and the cell is repointed (the old bytes
//! become garbage until the partition is rewritten at checkpoint). If the
//! heap is exhausted, the *relation* relocates the tuple to another
//! partition and a forwarding address is left behind (footnote 1).

use crate::error::StorageError;
use crate::schema::{AttrType, Schema};
use crate::value::{OwnedValue, TupleId, Value};

/// Construction parameters for partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Total byte budget per partition ("one or two disk tracks"; a 1986
    /// track held ~25–50 KB).
    pub partition_bytes: usize,
    /// Fraction of the budget reserved for the variable-length heap,
    /// in percent.
    pub heap_percent: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            partition_bytes: 64 * 1024,
            heap_percent: 25,
        }
    }
}

impl PartitionConfig {
    /// A tiny configuration for tests that want to force partition
    /// overflow and tuple relocation quickly.
    #[must_use]
    pub fn tiny() -> Self {
        PartitionConfig {
            partition_bytes: 1024,
            heap_percent: 25,
        }
    }
}

/// State of one tuple slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Never used or freed.
    Empty,
    /// Holds a live tuple.
    Occupied,
    /// Tuple was relocated; the slot body holds the forwarding `TupleId`.
    Forwarded,
}

/// A partition: tuple slots + variable-length heap.
pub struct Partition {
    slot_size: usize,
    capacity: usize,
    heap_budget: usize,
    slots: Vec<u8>,
    states: Vec<SlotState>,
    heap: Vec<u8>,
    free_slots: Vec<u32>,
    live: usize,
}

impl Partition {
    /// Create a partition for tuples of `arity` attributes under `config`.
    #[must_use]
    pub fn new(arity: usize, config: PartitionConfig) -> Self {
        let slot_size = 8 * arity.max(1);
        let heap_budget = config.partition_bytes * config.heap_percent / 100;
        let slot_budget = config.partition_bytes - heap_budget;
        let capacity = (slot_budget / slot_size).max(1);
        Partition {
            slot_size,
            capacity,
            heap_budget,
            slots: Vec::new(),
            states: Vec::new(),
            heap: Vec::new(),
            free_slots: Vec::new(),
            live: 0,
        }
    }

    /// Maximum number of tuple slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live tuples.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// True if a new tuple can be placed here (slot available).
    #[must_use]
    pub fn has_slot(&self) -> bool {
        !self.free_slots.is_empty() || self.states.len() < self.capacity
    }

    /// Bytes of heap still unreserved.
    #[must_use]
    pub fn heap_remaining(&self) -> usize {
        self.heap_budget.saturating_sub(self.heap.len())
    }

    /// Number of additional tuples this partition can hold slot-wise
    /// (free-list slots plus never-used capacity; heap budget ignored).
    #[must_use]
    pub fn insert_headroom(&self) -> usize {
        self.free_slots.len() + self.capacity.saturating_sub(self.states.len())
    }

    /// State of slot `slot`.
    pub fn slot_state(&self, slot: u32) -> Result<SlotState, StorageError> {
        self.states
            .get(slot as usize)
            .copied()
            .ok_or(StorageError::NoSuchSlot(TupleId::new(u32::MAX, slot)))
    }

    fn cell(&self, slot: u32, attr: usize) -> &[u8] {
        let base = slot as usize * self.slot_size + attr * 8;
        &self.slots[base..base + 8]
    }

    fn cell_mut(&mut self, slot: u32, attr: usize) -> &mut [u8] {
        let base = slot as usize * self.slot_size + attr * 8;
        &mut self.slots[base..base + 8]
    }

    fn write_cell(&mut self, slot: u32, attr: usize, a: u32, b: u32) {
        let c = self.cell_mut(slot, attr);
        c[..4].copy_from_slice(&a.to_le_bytes());
        c[4..].copy_from_slice(&b.to_le_bytes());
    }

    fn read_cell_pair(&self, slot: u32, attr: usize) -> (u32, u32) {
        let c = self.cell(slot, attr);
        (le_u32(&c[..4]), le_u32(&c[4..]))
    }

    /// Append `bytes` to the heap; returns the offset, or `HeapExhausted`.
    fn heap_alloc(&mut self, bytes: &[u8]) -> Result<u32, StorageError> {
        if self.heap.len() + bytes.len() > self.heap_budget {
            return Err(StorageError::HeapExhausted);
        }
        let off = self.heap.len() as u32;
        self.heap.extend_from_slice(bytes);
        Ok(off)
    }

    /// Heap bytes a row of values would need.
    #[must_use]
    pub fn heap_needed(values: &[OwnedValue]) -> usize {
        values
            .iter()
            .map(|v| match v {
                OwnedValue::Str(s) => s.len(),
                OwnedValue::PtrList(l) => l.len() * 8,
                _ => 0,
            })
            .sum()
    }

    fn write_value(
        &mut self,
        slot: u32,
        attr: usize,
        value: &OwnedValue,
    ) -> Result<(), StorageError> {
        match value {
            OwnedValue::Int(i) => {
                self.cell_mut(slot, attr).copy_from_slice(&i.to_le_bytes());
            }
            OwnedValue::Str(s) => {
                let off = self.heap_alloc(s.as_bytes())?;
                self.write_cell(slot, attr, off, s.len() as u32);
            }
            OwnedValue::Ptr(p) => {
                let t = p.unwrap_or_else(TupleId::null);
                self.write_cell(slot, attr, t.partition, t.slot);
            }
            OwnedValue::PtrList(l) => {
                let mut bytes = Vec::with_capacity(l.len() * 8);
                for t in l {
                    bytes.extend_from_slice(&t.partition.to_le_bytes());
                    bytes.extend_from_slice(&t.slot.to_le_bytes());
                }
                let off = self.heap_alloc(&bytes)?;
                self.write_cell(slot, attr, off, l.len() as u32);
            }
        }
        Ok(())
    }

    /// Insert a (schema-checked) row; returns the slot. The caller must
    /// ensure `has_slot()` and sufficient heap (`heap_needed ≤
    /// heap_remaining`); on heap exhaustion mid-write the slot is rolled
    /// back and `HeapExhausted` returned.
    pub fn insert(&mut self, values: &[OwnedValue]) -> Result<u32, StorageError> {
        let slot = if let Some(s) = self.free_slots.pop() {
            s
        } else {
            if self.states.len() >= self.capacity {
                return Err(StorageError::HeapExhausted);
            }
            self.states.push(SlotState::Empty);
            self.slots.resize(self.states.len() * self.slot_size, 0);
            (self.states.len() - 1) as u32
        };
        for (i, v) in values.iter().enumerate() {
            if let Err(e) = self.write_value(slot, i, v) {
                self.free_slots.push(slot);
                return Err(e);
            }
        }
        self.states[slot as usize] = SlotState::Occupied;
        self.live += 1;
        Ok(slot)
    }

    /// Read attribute `attr` of the tuple in `slot` according to `schema`.
    pub fn read(&self, slot: u32, attr: usize, schema: &Schema) -> Result<Value<'_>, StorageError> {
        match self.slot_state(slot)? {
            SlotState::Occupied => {}
            _ => return Err(StorageError::SlotEmpty(TupleId::new(u32::MAX, slot))),
        }
        let ty = schema.attr(attr)?.ty;
        Ok(match ty {
            AttrType::Int => {
                let c = self.cell(slot, attr);
                Value::Int(le_i64(c))
            }
            AttrType::Str => {
                let (off, len) = self.read_cell_pair(slot, attr);
                let bytes = &self.heap[off as usize..off as usize + len as usize];
                Value::Str(
                    std::str::from_utf8(bytes).map_err(|_| {
                        StorageError::CorruptImage("heap string is not valid UTF-8")
                    })?,
                )
            }
            AttrType::Ptr => {
                let (p, s) = self.read_cell_pair(slot, attr);
                let t = TupleId::new(p, s);
                Value::Ptr(if t.is_null() { None } else { Some(t) })
            }
            AttrType::PtrList => {
                let (off, count) = self.read_cell_pair(slot, attr);
                let mut list = Vec::with_capacity(count as usize);
                for i in 0..count as usize {
                    let base = off as usize + i * 8;
                    let p = le_u32(&self.heap[base..base + 4]);
                    let s = le_u32(&self.heap[base + 4..base + 8]);
                    list.push(TupleId::new(p, s));
                }
                Value::PtrList(list)
            }
        })
    }

    /// Overwrite attribute `attr` in `slot`. Fixed-size values update in
    /// place; variable-length values append to the heap and repoint.
    pub fn update(
        &mut self,
        slot: u32,
        attr: usize,
        value: &OwnedValue,
        schema: &Schema,
    ) -> Result<(), StorageError> {
        match self.slot_state(slot)? {
            SlotState::Occupied => {}
            _ => return Err(StorageError::SlotEmpty(TupleId::new(u32::MAX, slot))),
        }
        let a = schema.attr(attr)?;
        if !a.ty.admits(value) {
            return Err(StorageError::TypeMismatch {
                attr,
                expected: a.ty.name(),
                found: value.type_name(),
            });
        }
        self.write_value(slot, attr, value)
    }

    /// Read all attributes of the tuple in `slot` (owned copies).
    pub fn read_row(&self, slot: u32, schema: &Schema) -> Result<Vec<OwnedValue>, StorageError> {
        (0..schema.arity())
            .map(|i| self.read(slot, i, schema).map(|v| v.to_owned_value()))
            .collect()
    }

    /// Free the slot (tuple deleted).
    pub fn delete(&mut self, slot: u32) -> Result<(), StorageError> {
        match self.slot_state(slot)? {
            SlotState::Occupied => {}
            _ => return Err(StorageError::SlotEmpty(TupleId::new(u32::MAX, slot))),
        }
        self.states[slot as usize] = SlotState::Empty;
        self.free_slots.push(slot);
        self.live -= 1;
        Ok(())
    }

    /// Mark the slot as relocated to `to` (footnote 1's forwarding
    /// address). The slot body's first cell stores the forwarding id.
    pub fn forward(&mut self, slot: u32, to: TupleId) -> Result<(), StorageError> {
        match self.slot_state(slot)? {
            SlotState::Occupied => {}
            _ => return Err(StorageError::SlotEmpty(TupleId::new(u32::MAX, slot))),
        }
        self.write_cell(slot, 0, to.partition, to.slot);
        self.states[slot as usize] = SlotState::Forwarded;
        self.live -= 1;
        Ok(())
    }

    /// Read the forwarding address from a forwarded slot.
    pub fn forwarding_of(&self, slot: u32) -> Result<TupleId, StorageError> {
        match self.slot_state(slot)? {
            SlotState::Forwarded => {}
            _ => return Err(StorageError::SlotEmpty(TupleId::new(u32::MAX, slot))),
        }
        let (p, s) = self.read_cell_pair(slot, 0);
        Ok(TupleId::new(p, s))
    }

    /// Mark a slot empty without state checks (crate-internal: used when
    /// freeing the slots of a forwarding chain).
    pub(crate) fn mark_empty(&mut self, slot: u32) {
        if self.states[slot as usize] == SlotState::Occupied {
            self.live -= 1;
        }
        self.states[slot as usize] = SlotState::Empty;
        self.free_slots.push(slot);
    }

    /// Slots currently occupied (live tuples only).
    pub fn occupied_slots(&self) -> impl Iterator<Item = u32> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == SlotState::Occupied)
            .map(|(i, _)| i as u32)
    }

    /// Serialize the partition to a byte image (recovery checkpointing).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.slot_size as u64).to_le_bytes());
        out.extend_from_slice(&(self.capacity as u64).to_le_bytes());
        out.extend_from_slice(&(self.heap_budget as u64).to_le_bytes());
        out.extend_from_slice(&(self.states.len() as u64).to_le_bytes());
        for s in &self.states {
            out.push(match s {
                SlotState::Empty => 0,
                SlotState::Occupied => 1,
                SlotState::Forwarded => 2,
            });
        }
        out.extend_from_slice(&(self.slots.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.slots);
        out.extend_from_slice(&(self.heap.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.heap);
        out
    }

    /// Reconstruct a partition from [`Partition::to_bytes`] output,
    /// rejecting truncated or malformed images with a typed error.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, StorageError> {
        let mut pos = 0usize;
        let read_u64 = |pos: &mut usize| -> Result<usize, StorageError> {
            let b = bytes
                .get(*pos..*pos + 8)
                .ok_or(StorageError::CorruptImage("truncated length field"))?;
            *pos += 8;
            Ok(le_u64(b) as usize)
        };
        let slot_size = read_u64(&mut pos)?;
        let capacity = read_u64(&mut pos)?;
        let heap_budget = read_u64(&mut pos)?;
        let n_states = read_u64(&mut pos)?;
        let state_bytes = bytes
            .get(pos..pos + n_states)
            .ok_or(StorageError::CorruptImage("truncated slot-state table"))?;
        let mut states = Vec::with_capacity(n_states);
        let mut free_slots = Vec::new();
        let mut live = 0usize;
        for (i, b) in state_bytes.iter().enumerate() {
            states.push(match b {
                1 => {
                    live += 1;
                    SlotState::Occupied
                }
                2 => SlotState::Forwarded,
                _ => {
                    free_slots.push(i as u32);
                    SlotState::Empty
                }
            });
        }
        pos += n_states;
        let n_slots = read_u64(&mut pos)?;
        let slots = bytes
            .get(pos..pos + n_slots)
            .ok_or(StorageError::CorruptImage("truncated slot payload"))?
            .to_vec();
        pos += n_slots;
        let n_heap = read_u64(&mut pos)?;
        let heap = bytes
            .get(pos..pos + n_heap)
            .ok_or(StorageError::CorruptImage("truncated heap payload"))?
            .to_vec();
        Ok(Partition {
            slot_size,
            capacity,
            heap_budget,
            slots,
            states,
            heap,
            free_slots,
            live,
        })
    }
}

/// Decode a little-endian `u32` from a 4-byte slice (the fixed cell
/// layout guarantees the width, so no fallible `try_into` is needed).
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Decode a little-endian `i64` from an 8-byte cell.
fn le_i64(b: &[u8]) -> i64 {
    i64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decode a little-endian `u64` from an 8-byte slice.
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};

    fn schema() -> Schema {
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("dept", AttrType::Ptr),
            ("kids", AttrType::PtrList),
        ])
    }

    fn row(name: &str, id: i64) -> Vec<OwnedValue> {
        vec![
            OwnedValue::Str(name.into()),
            OwnedValue::Int(id),
            OwnedValue::Ptr(Some(TupleId::new(7, 9))),
            OwnedValue::PtrList(vec![TupleId::new(1, 2), TupleId::new(3, 4)]),
        ]
    }

    #[test]
    fn insert_and_read_every_type() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let slot = p.insert(&row("Dave", 23)).unwrap();
        assert_eq!(p.read(slot, 0, &s).unwrap(), Value::Str("Dave"));
        assert_eq!(p.read(slot, 1, &s).unwrap(), Value::Int(23));
        assert_eq!(
            p.read(slot, 2, &s).unwrap(),
            Value::Ptr(Some(TupleId::new(7, 9)))
        );
        assert_eq!(
            p.read(slot, 3, &s).unwrap(),
            Value::PtrList(vec![TupleId::new(1, 2), TupleId::new(3, 4)])
        );
    }

    #[test]
    fn null_pointer_roundtrip() {
        let s = Schema::of(&[("p", AttrType::Ptr)]);
        let mut p = Partition::new(1, PartitionConfig::default());
        let slot = p.insert(&[OwnedValue::Ptr(None)]).unwrap();
        assert_eq!(p.read(slot, 0, &s).unwrap(), Value::Ptr(None));
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let a = p.insert(&row("A", 1)).unwrap();
        let _b = p.insert(&row("B", 2)).unwrap();
        assert_eq!(p.live(), 2);
        p.delete(a).unwrap();
        assert_eq!(p.live(), 1);
        assert!(matches!(p.read(a, 0, &s), Err(StorageError::SlotEmpty(_))));
        let c = p.insert(&row("C", 3)).unwrap();
        assert_eq!(c, a, "freed slot must be reused");
    }

    #[test]
    fn update_in_place_and_varlen_regrow() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let slot = p.insert(&row("Al", 1)).unwrap();
        p.update(slot, 1, &OwnedValue::Int(99), &s).unwrap();
        assert_eq!(p.read(slot, 1, &s).unwrap(), Value::Int(99));
        // Growing a string must not move the tuple (same slot).
        p.update(slot, 0, &OwnedValue::Str("Alexander-the-Great".into()), &s)
            .unwrap();
        assert_eq!(
            p.read(slot, 0, &s).unwrap(),
            Value::Str("Alexander-the-Great")
        );
    }

    #[test]
    fn update_type_mismatch_rejected() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let slot = p.insert(&row("A", 1)).unwrap();
        assert!(matches!(
            p.update(slot, 1, &OwnedValue::Str("no".into()), &s),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn heap_exhaustion_reported_and_rolled_back() {
        let _schema = Schema::of(&[("s", AttrType::Str)]);
        let mut p = Partition::new(1, PartitionConfig::tiny());
        let big = "x".repeat(10_000);
        let err = p.insert(&[OwnedValue::Str(big)]).unwrap_err();
        assert_eq!(err, StorageError::HeapExhausted);
        assert_eq!(p.live(), 0);
        // Partition still usable.
        p.insert(&[OwnedValue::Str("ok".into())]).unwrap();
    }

    #[test]
    fn forwarding_address() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let slot = p.insert(&row("A", 1)).unwrap();
        let target = TupleId::new(5, 42);
        p.forward(slot, target).unwrap();
        assert_eq!(p.slot_state(slot).unwrap(), SlotState::Forwarded);
        assert_eq!(p.forwarding_of(slot).unwrap(), target);
        assert!(
            p.read(slot, 0, &s).is_err(),
            "forwarded slot is not readable"
        );
    }

    #[test]
    fn capacity_enforced() {
        let s = Schema::of(&[("i", AttrType::Int)]);
        let mut p = Partition::new(1, PartitionConfig::tiny());
        let cap = p.capacity();
        for i in 0..cap {
            p.insert(&[OwnedValue::Int(i as i64)]).unwrap();
        }
        assert!(!p.has_slot());
        assert!(p.insert(&[OwnedValue::Int(-1)]).is_err());
        let _ = s;
    }

    #[test]
    fn byte_image_roundtrip() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let a = p.insert(&row("Dave", 23)).unwrap();
        let b = p.insert(&row("Suzan", 12)).unwrap();
        let c = p.insert(&row("Yaman", 44)).unwrap();
        p.delete(a).unwrap();
        p.forward(b, TupleId::new(9, 9)).unwrap();
        let img = p.to_bytes();
        let q = Partition::try_from_bytes(&img).unwrap();
        assert_eq!(q.live(), p.live());
        assert_eq!(q.capacity(), p.capacity());
        assert_eq!(q.slot_state(a).unwrap(), SlotState::Empty);
        assert_eq!(q.slot_state(b).unwrap(), SlotState::Forwarded);
        assert_eq!(q.forwarding_of(b).unwrap(), TupleId::new(9, 9));
        assert_eq!(q.read(c, 0, &s).unwrap(), Value::Str("Yaman"));
        assert_eq!(q.read(c, 1, &s).unwrap(), Value::Int(44));
        // Freed slots survive the roundtrip.
        let mut q = q;
        let d = q.insert(&row("New", 1)).unwrap();
        assert_eq!(d, a);
    }

    #[test]
    fn occupied_slots_iterates_live_only() {
        let s = schema();
        let mut p = Partition::new(s.arity(), PartitionConfig::default());
        let a = p.insert(&row("A", 1)).unwrap();
        let b = p.insert(&row("B", 2)).unwrap();
        let c = p.insert(&row("C", 3)).unwrap();
        p.delete(b).unwrap();
        let live: Vec<u32> = p.occupied_slots().collect();
        assert_eq!(live, vec![a, c]);
    }
}
