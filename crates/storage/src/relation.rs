//! Relations: collections of partitions with stable tuple addressing.

use crate::error::StorageError;
use crate::partition::{Partition, PartitionConfig, SlotState};
use crate::schema::Schema;
use crate::value::{OwnedValue, TupleId, Value};

/// Maximum forwarding hops tolerated when resolving a tuple id. Relocation
/// is rare (heap overflow only) and never re-forwards a forwarded slot, so
/// anything deep indicates corruption.
const MAX_FORWARD_HOPS: usize = 8;

/// A base relation (§2.1): partitions of immovable tuples.
///
/// Relations do not support direct traversal in the MM-DBMS — "all access
/// to a relation is through an index". [`Relation::tids`] exists so the
/// required primary index can be built and tests can inspect contents.
pub struct Relation {
    name: String,
    schema: Schema,
    partitions: Vec<Partition>,
    config: PartitionConfig,
    len: usize,
    /// Partitions touched since the last commit (log write-ahead hook;
    /// consumed wholesale by [`Relation::clear_dirty`]).
    dirty: Vec<bool>,
    /// Partitions touched since they were last checkpointed (checkpoint
    /// hook; cleared one partition at a time as a fuzzy checkpoint makes
    /// progress).
    ckpt_dirty: Vec<bool>,
    /// Monotone per-partition version counters, bumped on every mutation
    /// (insert/update/delete) alongside the dirty bits. Never reset —
    /// readers snapshot them to detect later writes (reuse-cache
    /// invalidation stamps).
    versions: Vec<u64>,
}

impl Relation {
    /// Create an empty relation.
    #[must_use]
    pub fn new(name: &str, schema: Schema, config: PartitionConfig) -> Self {
        Relation {
            name: name.to_string(),
            schema,
            partitions: Vec::new(),
            config,
            len: 0,
            dirty: Vec::new(),
            ckpt_dirty: Vec::new(),
            versions: Vec::new(),
        }
    }

    /// Create with the default partition configuration.
    #[must_use]
    pub fn with_default_config(name: &str, schema: Schema) -> Self {
        Relation::new(name, schema, PartitionConfig::default())
    }

    /// Relation name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The partition configuration.
    #[must_use]
    pub fn config(&self) -> PartitionConfig {
        self.config
    }

    /// Number of live tuples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no tuples are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of partitions allocated.
    #[must_use]
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    fn partition(&self, p: u32) -> Result<&Partition, StorageError> {
        self.partitions
            .get(p as usize)
            .ok_or(StorageError::NoSuchPartition(p))
    }

    fn mark_dirty(&mut self, p: u32) {
        self.dirty[p as usize] = true;
        self.ckpt_dirty[p as usize] = true;
        self.versions[p as usize] += 1;
    }

    /// Find (or create) a partition that can host `values`.
    fn placement_for(&mut self, values: &[OwnedValue]) -> u32 {
        let heap_need = Partition::heap_needed(values);
        // Last partition first — the common fast path.
        for (i, p) in self.partitions.iter().enumerate().rev() {
            if p.has_slot() && p.heap_remaining() >= heap_need {
                return i as u32;
            }
            // Only check a couple of recent partitions before growing; a
            // full scan would make inserts O(partitions).
            if self.partitions.len() - i >= 2 {
                break;
            }
        }
        self.partitions
            .push(Partition::new(self.schema.arity(), self.config));
        self.dirty.push(true);
        self.ckpt_dirty.push(true);
        self.versions.push(1);
        (self.partitions.len() - 1) as u32
    }

    /// Predict the partitions `rows` would land in if inserted in order,
    /// without mutating the relation. Returned ids may reach past
    /// `partition_count()` when rows would force new partitions. Mirrors
    /// [`Relation::insert`]'s placement policy, but interleaved writes can
    /// shift placements — callers needing an exact answer must re-validate
    /// once they hold the relevant locks.
    #[must_use]
    pub fn predict_inserts(&self, rows: &[Vec<OwnedValue>]) -> Vec<u32> {
        let fresh = Partition::new(self.schema.arity(), self.config);
        let (new_slots, new_heap) = (fresh.insert_headroom(), fresh.heap_remaining());
        let mut sim: Vec<(usize, usize)> = self
            .partitions
            .iter()
            .map(|p| (p.insert_headroom(), p.heap_remaining()))
            .collect();
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let need = Partition::heap_needed(row);
            let mut placed = None;
            for i in (0..sim.len()).rev() {
                let (slots, heap) = sim[i];
                if slots > 0 && heap >= need {
                    placed = Some(i);
                    break;
                }
                if sim.len() - i >= 2 {
                    break;
                }
            }
            let i = placed.unwrap_or_else(|| {
                sim.push((new_slots, new_heap));
                sim.len() - 1
            });
            sim[i].0 = sim[i].0.saturating_sub(1);
            sim[i].1 = sim[i].1.saturating_sub(need);
            out.push(i as u32);
        }
        out
    }

    /// Insert a row; returns its permanent [`TupleId`].
    pub fn insert(&mut self, values: &[OwnedValue]) -> Result<TupleId, StorageError> {
        self.schema.check_row(values)?;
        let p = self.placement_for(values);
        let slot = self.partitions[p as usize].insert(values)?;
        self.mark_dirty(p);
        self.len += 1;
        Ok(TupleId::new(p, slot))
    }

    /// Follow forwarding addresses to the current physical location.
    pub fn resolve(&self, tid: TupleId) -> Result<TupleId, StorageError> {
        let mut cur = tid;
        for _ in 0..MAX_FORWARD_HOPS {
            let part = self.partition(cur.partition)?;
            match part.slot_state(cur.slot) {
                Ok(SlotState::Forwarded) => {
                    cur = part.forwarding_of(cur.slot)?;
                }
                Ok(SlotState::Occupied) => return Ok(cur),
                Ok(SlotState::Empty) => return Err(StorageError::SlotEmpty(cur)),
                Err(_) => return Err(StorageError::NoSuchSlot(cur)),
            }
        }
        Err(StorageError::ForwardingCycle(tid))
    }

    /// Read one attribute. Follows forwarding.
    pub fn field(&self, tid: TupleId, attr: usize) -> Result<Value<'_>, StorageError> {
        let t = self.resolve(tid)?;
        self.partition(t.partition)?
            .read(t.slot, attr, &self.schema)
    }

    /// Read one attribute by name.
    pub fn field_by_name(&self, tid: TupleId, name: &str) -> Result<Value<'_>, StorageError> {
        let idx = self.schema.index_of(name)?;
        self.field(tid, idx)
    }

    /// Read the whole row (owned).
    pub fn row(&self, tid: TupleId) -> Result<Vec<OwnedValue>, StorageError> {
        let t = self.resolve(tid)?;
        self.partition(t.partition)?.read_row(t.slot, &self.schema)
    }

    /// Update one attribute in place. If a variable-length value no longer
    /// fits the partition's heap, the tuple is relocated to another
    /// partition and a forwarding address is left behind (footnote 1); the
    /// original `TupleId` remains valid either way.
    pub fn update_field(
        &mut self,
        tid: TupleId,
        attr: usize,
        value: &OwnedValue,
    ) -> Result<(), StorageError> {
        let t = self.resolve(tid)?;
        let res = self.partitions[t.partition as usize].update(t.slot, attr, value, &self.schema);
        match res {
            Ok(()) => {
                self.mark_dirty(t.partition);
                Ok(())
            }
            Err(StorageError::HeapExhausted) => {
                // Relocate: read current row, apply the update, move it.
                let mut row =
                    self.partitions[t.partition as usize].read_row(t.slot, &self.schema)?;
                row[attr] = value.clone();
                let p = self.placement_for(&row);
                if p == t.partition {
                    return Err(StorageError::HeapExhausted);
                }
                let new_slot = self.partitions[p as usize].insert(&row)?;
                let new_tid = TupleId::new(p, new_slot);
                self.partitions[t.partition as usize].forward(t.slot, new_tid)?;
                self.mark_dirty(t.partition);
                self.mark_dirty(p);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Delete the tuple. Forwarding chains are collapsed: every slot on
    /// the chain is freed.
    pub fn delete(&mut self, tid: TupleId) -> Result<(), StorageError> {
        // Free the forwarding chain.
        let mut cur = tid;
        for _ in 0..MAX_FORWARD_HOPS {
            let part = self
                .partitions
                .get_mut(cur.partition as usize)
                .ok_or(StorageError::NoSuchPartition(cur.partition))?;
            match part.slot_state(cur.slot)? {
                SlotState::Forwarded => {
                    let next = part.forwarding_of(cur.slot)?;
                    // Freeing a forwarded slot: mark empty directly.
                    part_free_forwarded(part, cur.slot);
                    self.mark_dirty(cur.partition);
                    cur = next;
                }
                SlotState::Occupied => {
                    part.delete(cur.slot)?;
                    self.mark_dirty(cur.partition);
                    self.len -= 1;
                    return Ok(());
                }
                SlotState::Empty => return Err(StorageError::SlotEmpty(cur)),
            }
        }
        Err(StorageError::ForwardingCycle(tid))
    }

    /// All live tuple ids (for building the mandatory primary index and
    /// for tests). Resolved ids only — no forwarded slots.
    #[must_use]
    pub fn tids(&self) -> Vec<TupleId> {
        let mut out = Vec::with_capacity(self.len);
        for (pi, p) in self.partitions.iter().enumerate() {
            for slot in p.occupied_slots() {
                out.push(TupleId::new(pi as u32, slot));
            }
        }
        out
    }

    /// All live tuple ids, lazily, in the same order as [`Relation::tids`]
    /// (partition order, then slot order) but without the `O(|R|)`
    /// temporary `Vec`. Scan paths that walk the ids exactly once should
    /// prefer this.
    pub fn iter_tids(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.partition_views().flat_map(|v| v.tids())
    }

    /// Live tuple ids of one partition, in slot order.
    pub fn tids_in_partition(
        &self,
        p: u32,
    ) -> Result<impl Iterator<Item = TupleId> + '_, StorageError> {
        Ok(self.partition_view(p)?.tids())
    }

    /// Read-only view of one partition. Views borrow the relation
    /// immutably, so they are `Sync`-shareable into scoped worker threads
    /// for partition-parallel scans.
    pub fn partition_view(&self, p: u32) -> Result<PartitionView<'_>, StorageError> {
        Ok(PartitionView {
            part: self.partition(p)?,
            index: p,
        })
    }

    /// Views of every partition, in partition order.
    pub fn partition_views(&self) -> impl Iterator<Item = PartitionView<'_>> {
        self.partitions
            .iter()
            .enumerate()
            .map(|(pi, part)| PartitionView {
                part,
                index: pi as u32,
            })
    }

    /// Byte image of one partition (for the recovery subsystem).
    pub fn partition_image(&self, p: u32) -> Result<Vec<u8>, StorageError> {
        Ok(self.partition(p)?.to_bytes())
    }

    /// Replace a partition from a byte image (recovery restart path).
    /// Fails with [`StorageError::CorruptImage`] on a malformed image,
    /// leaving the relation untouched.
    pub fn load_partition_image(&mut self, p: u32, image: &[u8]) -> Result<(), StorageError> {
        let part = Partition::try_from_bytes(image)?;
        self.install_partition(p, part);
        Ok(())
    }

    /// Install an already-decoded partition at position `p` (the parallel
    /// restart path decodes images on pool workers, then installs them
    /// serially in plan order). Gaps up to `p` are filled with empty
    /// partitions; an existing partition is replaced and its version
    /// bumped.
    pub fn install_partition(&mut self, p: u32, part: Partition) {
        if p as usize >= self.partitions.len() {
            while self.partitions.len() < p as usize {
                self.partitions
                    .push(Partition::new(self.schema.arity(), self.config));
                self.dirty.push(false);
                self.ckpt_dirty.push(false);
                self.versions.push(1);
            }
            self.partitions.push(part);
            self.dirty.push(false);
            self.ckpt_dirty.push(false);
            self.versions.push(1);
        } else {
            self.partitions[p as usize] = part;
            self.dirty[p as usize] = false;
            self.ckpt_dirty[p as usize] = false;
            self.versions[p as usize] += 1;
        }
        self.len = self.partitions.iter().map(Partition::live).sum();
    }

    /// Partitions dirtied since the last [`Relation::clear_dirty`] call.
    #[must_use]
    pub fn dirty_partitions(&self) -> Vec<u32> {
        self.dirty
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Reset the per-commit dirty tracking (after the commit path has
    /// logged every dirtied partition's after-image).
    pub fn clear_dirty(&mut self) {
        for d in &mut self.dirty {
            *d = false;
        }
    }

    /// Partitions modified since they were last checkpointed — the work
    /// list a [checkpoint](crate::Relation::clear_checkpoint_dirty) walks.
    #[must_use]
    pub fn checkpoint_dirty_partitions(&self) -> Vec<u32> {
        self.ckpt_dirty
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Per-partition version counters. A partition's counter strictly
    /// increases with every mutation that touches it, so equality of a
    /// stored snapshot with the live slice proves the partition's bytes
    /// are unchanged since the snapshot was taken. New partitions extend
    /// the slice, so a length change is itself a version change.
    #[must_use]
    pub fn partition_versions(&self) -> &[u64] {
        &self.versions
    }

    /// Mark one partition checkpointed. Cleared per partition (not
    /// wholesale) so a fuzzy checkpoint interleaved with live updates
    /// never marks a partition clean that was re-dirtied after its image
    /// was captured.
    pub fn clear_checkpoint_dirty(&mut self, p: u32) {
        if let Some(d) = self.ckpt_dirty.get_mut(p as usize) {
            *d = false;
        }
    }
}

/// Read-only handle on one partition of a [`Relation`].
///
/// The handle is `Copy` and borrows the relation immutably, so a parallel
/// scan can hand one view per partition to scoped worker threads: the
/// partition data is owned (`Vec<u8>` slots + heap), making `&Partition`
/// — and therefore this view — `Send + Sync`.
#[derive(Clone, Copy)]
pub struct PartitionView<'a> {
    part: &'a Partition,
    index: u32,
}

impl std::fmt::Debug for PartitionView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionView")
            .field("index", &self.index)
            .field("live", &self.part.live())
            .finish()
    }
}

impl<'a> PartitionView<'a> {
    /// Which partition this view covers.
    #[must_use]
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Number of live tuples in the partition.
    #[must_use]
    pub fn live(&self) -> usize {
        self.part.live()
    }

    /// Live tuple ids in slot order (the order [`Relation::tids`] emits
    /// them within this partition). Takes the view by value (it is
    /// `Copy`), so the iterator borrows only the relation, not the view.
    pub fn tids(self) -> impl Iterator<Item = TupleId> + 'a {
        let index = self.index;
        self.part
            .occupied_slots()
            .map(move |slot| TupleId::new(index, slot))
    }
}

/// Free a forwarded slot. (Partition has no public API for this single
/// case; forwarded slots are only ever freed when the logical tuple dies.)
fn part_free_forwarded(part: &mut Partition, slot: u32) {
    part.free_forwarded(slot);
}

impl Partition {
    /// Free a forwarded slot (the logical tuple was deleted).
    pub(crate) fn free_forwarded(&mut self, slot: u32) {
        debug_assert_eq!(self.slot_state(slot).ok(), Some(SlotState::Forwarded));
        self.mark_empty(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn emp_schema() -> Schema {
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("age", AttrType::Int),
        ])
    }

    fn emp_row(name: &str, id: i64, age: i64) -> Vec<OwnedValue> {
        vec![
            OwnedValue::Str(name.into()),
            OwnedValue::Int(id),
            OwnedValue::Int(age),
        ]
    }

    #[test]
    fn insert_read_roundtrip() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        let t = r.insert(&emp_row("Dave", 23, 24)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.field(t, 0).unwrap(), Value::Str("Dave"));
        assert_eq!(r.field_by_name(t, "age").unwrap(), Value::Int(24));
        assert!(r.field_by_name(t, "nope").is_err());
    }

    #[test]
    fn schema_enforced_on_insert() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        assert!(matches!(
            r.insert(&[OwnedValue::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            r.insert(&[OwnedValue::Int(1), OwnedValue::Int(2), OwnedValue::Int(3)]),
            Err(StorageError::TypeMismatch { attr: 0, .. })
        ));
    }

    #[test]
    fn spans_multiple_partitions() {
        let mut r = Relation::new("emp", emp_schema(), PartitionConfig::tiny());
        let mut tids = Vec::new();
        for i in 0..500 {
            tids.push(r.insert(&emp_row(&format!("e{i}"), i, i % 70)).unwrap());
        }
        assert!(
            r.partition_count() > 1,
            "should overflow one tiny partition"
        );
        assert_eq!(r.len(), 500);
        for (i, t) in tids.iter().enumerate() {
            assert_eq!(r.field(*t, 1).unwrap(), Value::Int(i as i64));
        }
        assert_eq!(r.tids().len(), 500);
    }

    #[test]
    fn delete_and_reuse() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        let a = r.insert(&emp_row("A", 1, 10)).unwrap();
        let b = r.insert(&emp_row("B", 2, 20)).unwrap();
        r.delete(a).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.field(a, 0).is_err());
        assert_eq!(r.field(b, 0).unwrap(), Value::Str("B"));
        assert!(matches!(r.delete(a), Err(StorageError::SlotEmpty(_))));
        let c = r.insert(&emp_row("C", 3, 30)).unwrap();
        assert_eq!(c, a, "slot reuse keeps partitions compact");
    }

    #[test]
    fn update_fixed_field() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        let t = r.insert(&emp_row("A", 1, 10)).unwrap();
        r.update_field(t, 2, &OwnedValue::Int(11)).unwrap();
        assert_eq!(r.field(t, 2).unwrap(), Value::Int(11));
    }

    #[test]
    fn heap_overflow_relocates_with_forwarding() {
        let mut r = Relation::new("emp", emp_schema(), PartitionConfig::tiny());
        let t = r.insert(&emp_row("x", 1, 10)).unwrap();
        // Tiny partitions have 256 bytes of heap; grow the name until the
        // tuple must relocate.
        let mut moved = false;
        for grow in 1..=8 {
            let s = "y".repeat(grow * 60);
            r.update_field(t, 0, &OwnedValue::Str(s.clone())).unwrap();
            assert_eq!(r.field(t, 0).unwrap(), Value::Str(s.as_str()));
            let resolved = r.resolve(t).unwrap();
            if resolved != t {
                moved = true;
                break;
            }
        }
        assert!(moved, "tuple should have relocated via forwarding");
        // Original id still reads, and deleting via it frees the chain.
        assert_eq!(r.field(t, 1).unwrap(), Value::Int(1));
        r.delete(t).unwrap();
        assert!(r.field(t, 1).is_err());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn dirty_tracking() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        assert!(r.dirty_partitions().is_empty());
        let t = r.insert(&emp_row("A", 1, 10)).unwrap();
        assert_eq!(r.dirty_partitions(), vec![0]);
        r.clear_dirty();
        assert!(r.dirty_partitions().is_empty());
        r.update_field(t, 2, &OwnedValue::Int(5)).unwrap();
        assert_eq!(r.dirty_partitions(), vec![0]);
    }

    #[test]
    fn partition_versions_bump_on_every_write() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        assert!(r.partition_versions().is_empty());
        let t = r.insert(&emp_row("A", 1, 10)).unwrap();
        let v0 = r.partition_versions().to_vec();
        assert_eq!(v0.len(), 1);
        r.update_field(t, 2, &OwnedValue::Int(11)).unwrap();
        let v1 = r.partition_versions().to_vec();
        assert!(v1[0] > v0[0], "update must bump the version");
        r.delete(t).unwrap();
        let v2 = r.partition_versions().to_vec();
        assert!(v2[0] > v1[0], "delete must bump the version");
        // clear_dirty never resets versions.
        r.clear_dirty();
        assert_eq!(r.partition_versions(), &v2[..]);
    }

    #[test]
    fn load_partition_image_bumps_version() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        r.insert(&emp_row("A", 1, 10)).unwrap();
        let img = r.partition_image(0).unwrap();
        let before = r.partition_versions()[0];
        r.load_partition_image(0, &img).unwrap();
        assert!(r.partition_versions()[0] > before);
    }

    #[test]
    fn iter_tids_matches_tids_under_churn() {
        let mut r = Relation::new("emp", emp_schema(), PartitionConfig::tiny());
        let mut tids = Vec::new();
        for i in 0..400 {
            tids.push(r.insert(&emp_row(&format!("e{i}"), i, i % 70)).unwrap());
        }
        // Punch holes so slot order != insertion order everywhere.
        for t in tids.iter().step_by(3) {
            r.delete(*t).unwrap();
        }
        assert!(r.partition_count() > 1, "churn test needs many partitions");
        assert_eq!(r.iter_tids().collect::<Vec<_>>(), r.tids());
    }

    #[test]
    fn partition_views_cover_all_tids_in_order() {
        let mut r = Relation::new("emp", emp_schema(), PartitionConfig::tiny());
        for i in 0..300 {
            r.insert(&emp_row(&format!("e{i}"), i, i)).unwrap();
        }
        let mut from_views = Vec::new();
        let mut live_total = 0;
        for (pi, v) in r.partition_views().enumerate() {
            assert_eq!(v.index(), pi as u32);
            live_total += v.live();
            from_views.extend(v.tids());
        }
        assert_eq!(live_total, r.len());
        assert_eq!(from_views, r.tids());
        // Single-partition access agrees with the full enumeration.
        let p0: Vec<_> = r.tids_in_partition(0).unwrap().collect();
        assert!(from_views.starts_with(&p0));
        assert!(r.partition_view(r.partition_count() as u32).is_err());
    }

    #[test]
    fn partition_image_roundtrip_via_relation() {
        let mut r = Relation::with_default_config("emp", emp_schema());
        let t = r.insert(&emp_row("Dave", 23, 24)).unwrap();
        let img = r.partition_image(0).unwrap();
        // Wreck the tuple, then restore the image.
        r.update_field(t, 1, &OwnedValue::Int(-1)).unwrap();
        r.load_partition_image(0, &img).unwrap();
        assert_eq!(r.field(t, 1).unwrap(), Value::Int(23));
        assert_eq!(r.len(), 1);
    }
}
