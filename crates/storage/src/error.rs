//! Storage-layer errors.

use crate::value::TupleId;

/// Errors raised by partitions, relations, and temporary lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A `TupleId` referred to a partition that does not exist.
    NoSuchPartition(u32),
    /// A `TupleId` referred to a slot outside the partition.
    NoSuchSlot(TupleId),
    /// The slot addressed is not occupied.
    SlotEmpty(TupleId),
    /// A value's type did not match the attribute's declared type.
    TypeMismatch {
        /// Attribute position in the schema.
        attr: usize,
        /// What the schema declares.
        expected: &'static str,
        /// What was supplied.
        found: &'static str,
    },
    /// Wrong number of values for the relation's schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Supplied arity.
        found: usize,
    },
    /// Attribute index out of range.
    NoSuchAttribute(usize),
    /// Named attribute not present in the schema.
    UnknownAttribute(String),
    /// The partition's heap cannot hold the value and relocation failed.
    HeapExhausted,
    /// A forwarding chain was longer than the storage engine permits
    /// (indicates corruption).
    ForwardingCycle(TupleId),
    /// A serialized partition image or heap payload failed validation
    /// (truncated image, bad UTF-8, out-of-range offsets).
    CorruptImage(&'static str),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::NoSuchPartition(p) => write!(f, "no such partition: {p}"),
            StorageError::NoSuchSlot(t) => write!(f, "no such slot: {t:?}"),
            StorageError::SlotEmpty(t) => write!(f, "slot is empty: {t:?}"),
            StorageError::TypeMismatch {
                attr,
                expected,
                found,
            } => write!(f, "attribute {attr}: expected {expected}, found {found}"),
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "expected {expected} values, found {found}")
            }
            StorageError::NoSuchAttribute(i) => write!(f, "no such attribute index: {i}"),
            StorageError::UnknownAttribute(n) => write!(f, "unknown attribute: {n}"),
            StorageError::HeapExhausted => write!(f, "partition heap exhausted"),
            StorageError::ForwardingCycle(t) => write!(f, "forwarding cycle at {t:?}"),
            StorageError::CorruptImage(what) => write!(f, "corrupt storage image: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let t = TupleId::new(1, 2);
        assert!(StorageError::NoSuchPartition(3).to_string().contains('3'));
        assert!(StorageError::SlotEmpty(t).to_string().contains("empty"));
        assert!(StorageError::ArityMismatch {
            expected: 3,
            found: 2
        }
        .to_string()
        .contains("3"));
        assert!(StorageError::UnknownAttribute("x".into())
            .to_string()
            .contains('x'));
    }
}
