//! MM-DBMS storage architecture (§2 of Lehman & Carey, SIGMOD 1986).
//!
//! The design decisions this crate implements, straight from the paper:
//!
//! * **Partitioned relations** (§2.1): every relation is broken into
//!   partitions — the unit of recovery, "larger than a typical disk page,
//!   probably on the order of one or two disk tracks". Tuples are grouped
//!   in partitions for space management and recovery, *not* for
//!   clustering.
//! * **Stable tuple addresses**: "tuples must not change locations once
//!   they have been entered into the database" — indices and other tuples
//!   refer to tuples by pointer ([`TupleId`]). Variable-length fields live
//!   in the partition's heap so tuple growth never moves a tuple; in the
//!   rare case a tuple must relocate (heap overflow), "a forwarding
//!   address will be left in its old position" (footnote 1).
//! * **Foreign keys as tuple pointers**: a foreign-key attribute stores a
//!   [`TupleId`] (or a list of them) instead of the key value, enabling
//!   precomputed joins.
//! * **Temporary lists** (§2.3): query results are lists of tuple-pointer
//!   rows plus a [`ResultDescriptor`] naming the projected fields — "no
//!   width reduction is ever done".
//!
//! Access to base relations is *only* via indices or explicit `TupleId`s;
//! the relation offers a raw tuple-id scan solely so that the primary
//! index (every relation must have at least one) can be built and so
//! tests can verify contents.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod adapter;
pub mod error;
pub mod partition;
pub mod relation;
pub mod schema;
pub mod templist;
pub mod value;

pub use adapter::{value_hash, value_order_tag, AttrAdapter, KeyValue, TempListAdapter};
pub use error::StorageError;
pub use partition::{Partition, PartitionConfig, SlotState};
pub use relation::{PartitionView, Relation};
pub use schema::{AttrType, Attribute, Schema};
pub use templist::{OutputField, ResultDescriptor, TempList};
pub use value::{OwnedValue, TupleId, Value};
