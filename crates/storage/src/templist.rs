//! Temporary lists and result descriptors (§2.3).
//!
//! *"The MM-DBMS uses a temporary list structure for storing intermediate
//! result relations. A temporary list is a list of tuple pointers plus an
//! associated result descriptor. The pointers point to the source
//! relation(s) from which the temporary relation was formed, and the
//! result descriptor identifies the fields that are contained in the
//! relation that the temporary list represents. The descriptor takes the
//! place of projection — no width reduction is ever done."*
//!
//! A row of a [`TempList`] is a fixed-arity group of [`TupleId`]s, one per
//! source relation (a selection result has arity 1; a two-way join result
//! has arity 2 — exactly the `(124, 243)` pairs of the paper's Figure 1).
//! Unlike base relations, a temporary list *can* be traversed directly.

use crate::error::StorageError;
use crate::relation::Relation;
use crate::value::{TupleId, Value};

/// One projected output field: which source relation of the temp list and
/// which attribute of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputField {
    /// Index into the temp list's source relations.
    pub source: usize,
    /// Attribute index within that source relation.
    pub attr: usize,
    /// Output column name (e.g. `"Emp Name"` in Figure 1).
    pub name: String,
}

impl OutputField {
    /// Construct an output field.
    #[must_use]
    pub fn new(source: usize, attr: usize, name: &str) -> Self {
        OutputField {
            source,
            attr,
            name: name.to_string(),
        }
    }
}

/// The fields a temporary list logically contains (§2.3, Figure 1's
/// "Result Descriptor": Emp Name / Emp Age / Dept Name).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultDescriptor {
    fields: Vec<OutputField>,
}

impl ResultDescriptor {
    /// Build a descriptor from fields.
    #[must_use]
    pub fn new(fields: Vec<OutputField>) -> Self {
        ResultDescriptor { fields }
    }

    /// The projected fields, in output order.
    #[must_use]
    pub fn fields(&self) -> &[OutputField] {
        &self.fields
    }

    /// Number of output columns.
    #[must_use]
    pub fn width(&self) -> usize {
        self.fields.len()
    }

    /// Output column names.
    #[must_use]
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

/// A temporary list: flat storage of fixed-arity tuple-pointer rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TempList {
    arity: usize,
    rows: Vec<TupleId>,
}

impl TempList {
    /// Create an empty list of the given row arity (number of source
    /// relations).
    #[must_use]
    pub fn new(arity: usize) -> Self {
        TempList {
            arity: arity.max(1),
            rows: Vec::new(),
        }
    }

    /// Create pre-sized.
    #[must_use]
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        TempList {
            arity: arity.max(1),
            rows: Vec::with_capacity(rows * arity.max(1)),
        }
    }

    /// Build an arity-1 list from a set of tuple ids (a selection result).
    #[must_use]
    pub fn from_tids(tids: Vec<TupleId>) -> Self {
        TempList {
            arity: 1,
            rows: tids,
        }
    }

    /// Row arity.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len() / self.arity
    }

    /// True when there are no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row (must match the arity).
    pub fn push(&mut self, row: &[TupleId]) -> Result<(), StorageError> {
        if row.len() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: row.len(),
            });
        }
        self.rows.extend_from_slice(row);
        Ok(())
    }

    /// Append a pair (the common join-result case).
    pub fn push_pair(&mut self, a: TupleId, b: TupleId) -> Result<(), StorageError> {
        self.push(&[a, b])
    }

    /// Move every row of `other` onto the end of `self` (bulk `Vec`
    /// extend — no per-row arity checks or pushes). This is the merge
    /// primitive for partition-parallel operators: per-partition results
    /// are appended in partition order to keep output deterministic.
    pub fn append(&mut self, other: TempList) -> Result<(), StorageError> {
        if other.arity != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: other.arity,
            });
        }
        let mut rows = other.rows;
        self.rows.append(&mut rows);
        Ok(())
    }

    /// Merge a sequence of same-arity lists into one, pre-sizing the
    /// result to the exact total row count.
    pub fn merged(arity: usize, parts: Vec<TempList>) -> Result<TempList, StorageError> {
        let total: usize = parts.iter().map(TempList::len).sum();
        let mut out = TempList::with_capacity(arity, total);
        for part in parts {
            out.append(part)?;
        }
        Ok(out)
    }

    /// Row `i` as a slice of tuple ids.
    #[must_use]
    pub fn row(&self, i: usize) -> &[TupleId] {
        &self.rows[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate over rows.
    pub fn iter(&self) -> impl Iterator<Item = &[TupleId]> + '_ {
        self.rows.chunks_exact(self.arity)
    }

    /// The tuple ids of one column (source position) across all rows.
    #[must_use]
    pub fn column(&self, source: usize) -> Vec<TupleId> {
        self.iter().map(|r| r[source]).collect()
    }

    /// Materialize row `i` through `descriptor` against the source
    /// relations — this is the *only* point where attribute values are
    /// actually extracted ("tuples are never copied, only pointed to",
    /// §4).
    pub fn materialize_row<'a>(
        &self,
        i: usize,
        descriptor: &ResultDescriptor,
        sources: &[&'a Relation],
    ) -> Result<Vec<Value<'a>>, StorageError> {
        let mut out = Vec::with_capacity(descriptor.width());
        self.materialize_row_into(i, descriptor, sources, &mut out)?;
        Ok(out)
    }

    /// [`TempList::materialize_row`] into a caller-owned scratch buffer
    /// (cleared first). Duplicate elimination materializes once per row
    /// *plus* once per hash-chain visit; reusing one buffer across those
    /// calls removes the per-visit heap allocation.
    pub fn materialize_row_into<'a>(
        &self,
        i: usize,
        descriptor: &ResultDescriptor,
        sources: &[&'a Relation],
        out: &mut Vec<Value<'a>>,
    ) -> Result<(), StorageError> {
        out.clear();
        let row = self.row(i);
        for f in descriptor.fields() {
            out.push(sources[f.source].field(row[f.source], f.attr)?);
        }
        Ok(())
    }

    /// Materialize every row (convenience for small results / tests).
    pub fn materialize_all<'a>(
        &self,
        descriptor: &ResultDescriptor,
        sources: &[&'a Relation],
    ) -> Result<Vec<Vec<Value<'a>>>, StorageError> {
        (0..self.len())
            .map(|i| self.materialize_row(i, descriptor, sources))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionConfig;
    use crate::schema::{AttrType, Schema};
    use crate::value::OwnedValue;

    fn setup() -> (Relation, Relation, Vec<TupleId>, Vec<TupleId>) {
        // The paper's Figure 1 relations.
        let mut emp = Relation::new(
            "employee",
            Schema::of(&[
                ("name", AttrType::Str),
                ("id", AttrType::Int),
                ("age", AttrType::Int),
                ("dept", AttrType::Ptr),
            ]),
            PartitionConfig::default(),
        );
        let mut dept = Relation::new(
            "department",
            Schema::of(&[("name", AttrType::Str), ("id", AttrType::Int)]),
            PartitionConfig::default(),
        );
        let toy = dept
            .insert(&[OwnedValue::Str("Toy".into()), OwnedValue::Int(459)])
            .unwrap();
        let shoe = dept
            .insert(&[OwnedValue::Str("Shoe".into()), OwnedValue::Int(409)])
            .unwrap();
        let dave = emp
            .insert(&[
                OwnedValue::Str("Dave".into()),
                OwnedValue::Int(23),
                OwnedValue::Int(24),
                OwnedValue::Ptr(Some(toy)),
            ])
            .unwrap();
        let cindy = emp
            .insert(&[
                OwnedValue::Str("Cindy".into()),
                OwnedValue::Int(22),
                OwnedValue::Int(22),
                OwnedValue::Ptr(Some(shoe)),
            ])
            .unwrap();
        (emp, dept, vec![dave, cindy], vec![toy, shoe])
    }

    #[test]
    fn arity_enforced() {
        let mut l = TempList::new(2);
        assert!(l.push(&[TupleId::new(0, 0)]).is_err());
        l.push_pair(TupleId::new(0, 0), TupleId::new(0, 1)).unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l.arity(), 2);
    }

    #[test]
    fn rows_and_columns() {
        let mut l = TempList::new(2);
        for i in 0..5u32 {
            l.push_pair(TupleId::new(0, i), TupleId::new(1, i * 10))
                .unwrap();
        }
        assert_eq!(l.len(), 5);
        assert_eq!(l.row(2), &[TupleId::new(0, 2), TupleId::new(1, 20)]);
        assert_eq!(
            l.column(1),
            (0..5u32)
                .map(|i| TupleId::new(1, i * 10))
                .collect::<Vec<_>>()
        );
        assert_eq!(l.iter().count(), 5);
    }

    #[test]
    fn from_tids_selection_result() {
        let tids = vec![TupleId::new(0, 3), TupleId::new(0, 7)];
        let l = TempList::from_tids(tids.clone());
        assert_eq!(l.arity(), 1);
        assert_eq!(l.column(0), tids);
    }

    #[test]
    fn figure_1_materialization() {
        let (emp, dept, emps, depts) = setup();
        // Join result: (employee, department) pairs + descriptor
        // [Emp Name, Emp Age, Dept Name].
        let mut result = TempList::new(2);
        result.push_pair(emps[0], depts[0]).unwrap();
        result.push_pair(emps[1], depts[1]).unwrap();
        let desc = ResultDescriptor::new(vec![
            OutputField::new(0, 0, "Emp Name"),
            OutputField::new(0, 2, "Emp Age"),
            OutputField::new(1, 0, "Dept Name"),
        ]);
        assert_eq!(
            desc.column_names(),
            vec!["Emp Name", "Emp Age", "Dept Name"]
        );
        let rows = result.materialize_all(&desc, &[&emp, &dept]).unwrap();
        assert_eq!(
            rows[0],
            vec![Value::Str("Dave"), Value::Int(24), Value::Str("Toy")]
        );
        assert_eq!(
            rows[1],
            vec![Value::Str("Cindy"), Value::Int(22), Value::Str("Shoe")]
        );
    }

    #[test]
    fn append_moves_rows_in_order() {
        let mut a = TempList::new(2);
        a.push_pair(TupleId::new(0, 0), TupleId::new(1, 0)).unwrap();
        let mut b = TempList::new(2);
        b.push_pair(TupleId::new(0, 1), TupleId::new(1, 1)).unwrap();
        b.push_pair(TupleId::new(0, 2), TupleId::new(1, 2)).unwrap();
        a.append(b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(0), &[TupleId::new(0, 0), TupleId::new(1, 0)]);
        assert_eq!(a.row(2), &[TupleId::new(0, 2), TupleId::new(1, 2)]);
    }

    #[test]
    fn append_rejects_arity_mismatch() {
        let mut a = TempList::new(2);
        let b = TempList::from_tids(vec![TupleId::new(0, 0)]);
        assert!(a.append(b).is_err());
    }

    #[test]
    fn merged_concatenates_parts_in_order() {
        let parts: Vec<TempList> = (0u32..3)
            .map(|p| TempList::from_tids(vec![TupleId::new(p, 0), TupleId::new(p, 1)]))
            .collect();
        let merged = TempList::merged(1, parts).unwrap();
        assert_eq!(merged.len(), 6);
        assert_eq!(
            merged.column(0),
            vec![
                TupleId::new(0, 0),
                TupleId::new(0, 1),
                TupleId::new(1, 0),
                TupleId::new(1, 1),
                TupleId::new(2, 0),
                TupleId::new(2, 1),
            ]
        );
    }
}
