//! Tuple identifiers and field values.

/// A stable tuple pointer: `(partition, slot)`.
///
/// §2.1: *"The tuples in a partition will be referred to directly by
/// memory addresses, so tuples must not change locations once they have
/// been entered into the database."* A `TupleId` is this crate's safe
/// equivalent of that memory address — resolving one is two array
/// indexings, and it stays valid for the life of the tuple (relocated
/// tuples leave a forwarding address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Partition number within the relation.
    pub partition: u32,
    /// Slot number within the partition.
    pub slot: u32,
}

impl TupleId {
    /// Construct a tuple id.
    #[must_use]
    pub fn new(partition: u32, slot: u32) -> Self {
        TupleId { partition, slot }
    }

    /// The reserved "null pointer" value (used by nullable foreign keys).
    #[must_use]
    pub fn null() -> Self {
        TupleId {
            partition: u32::MAX,
            slot: u32::MAX,
        }
    }

    /// True for the reserved null value.
    #[must_use]
    pub fn is_null(&self) -> bool {
        self.partition == u32::MAX && self.slot == u32::MAX
    }
}

/// A field value read from or written to a tuple.
///
/// `Str` borrows directly from the partition heap on reads — extracting an
/// attribute never copies string bytes (§2.2's rationale for storing
/// pointers in indices: "a single tuple pointer provides the index with
/// access to both the attribute value of a tuple and the tuple itself").
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// 64-bit integer.
    Int(i64),
    /// Variable-length string (borrowed from the partition heap).
    Str(&'a str),
    /// Foreign-key tuple pointer; `None` encodes NULL.
    Ptr(Option<TupleId>),
    /// One-to-many foreign-key pointer list.
    PtrList(Vec<TupleId>),
}

impl Value<'_> {
    /// Total order over values: same-type values compare naturally
    /// (integers numerically, strings lexicographically, pointers by
    /// `(partition, slot)`); heterogeneous values order by type tag.
    /// This is *the* comparison used by every index adapter and join.
    #[must_use]
    pub fn total_cmp(&self, other: &Value<'_>) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Ptr(a), Value::Ptr(b)) => a
                .unwrap_or_else(TupleId::null)
                .cmp(&b.unwrap_or_else(TupleId::null)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Str(_) => 1,
            Value::Ptr(_) => 2,
            Value::PtrList(_) => 3,
        }
    }

    /// Short name of the value's type (for error messages).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Ptr(_) => "ptr",
            Value::PtrList(_) => "ptrlist",
        }
    }

    /// The integer payload, if this is an `Int`.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The pointer payload, if this is a `Ptr`.
    #[must_use]
    pub fn as_ptr(&self) -> Option<Option<TupleId>> {
        match self {
            Value::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Convert to an owned value (copies string bytes).
    #[must_use]
    pub fn to_owned_value(&self) -> OwnedValue {
        match self {
            Value::Int(i) => OwnedValue::Int(*i),
            Value::Str(s) => OwnedValue::Str((*s).to_string()),
            Value::Ptr(p) => OwnedValue::Ptr(*p),
            Value::PtrList(l) => OwnedValue::PtrList(l.clone()),
        }
    }
}

/// An owned field value, used when building tuples for insertion.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// 64-bit integer.
    Int(i64),
    /// Variable-length string.
    Str(String),
    /// Foreign-key tuple pointer; `None` encodes NULL.
    Ptr(Option<TupleId>),
    /// One-to-many foreign-key pointer list.
    PtrList(Vec<TupleId>),
}

impl OwnedValue {
    /// Short name of the value's type (for error messages).
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            OwnedValue::Int(_) => "int",
            OwnedValue::Str(_) => "str",
            OwnedValue::Ptr(_) => "ptr",
            OwnedValue::PtrList(_) => "ptrlist",
        }
    }

    /// Borrowed view of this value.
    #[must_use]
    pub fn as_value(&self) -> Value<'_> {
        match self {
            OwnedValue::Int(i) => Value::Int(*i),
            OwnedValue::Str(s) => Value::Str(s),
            OwnedValue::Ptr(p) => Value::Ptr(*p),
            OwnedValue::PtrList(l) => Value::PtrList(l.clone()),
        }
    }
}

impl From<i64> for OwnedValue {
    fn from(i: i64) -> Self {
        OwnedValue::Int(i)
    }
}

impl From<&str> for OwnedValue {
    fn from(s: &str) -> Self {
        OwnedValue::Str(s.to_string())
    }
}

impl From<String> for OwnedValue {
    fn from(s: String) -> Self {
        OwnedValue::Str(s)
    }
}

impl From<TupleId> for OwnedValue {
    fn from(t: TupleId) -> Self {
        OwnedValue::Ptr(Some(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_tuple_id() {
        assert!(TupleId::null().is_null());
        assert!(!TupleId::new(0, 0).is_null());
    }

    #[test]
    fn tuple_id_orders_by_partition_then_slot() {
        assert!(TupleId::new(0, 5) < TupleId::new(1, 0));
        assert!(TupleId::new(1, 2) < TupleId::new(1, 3));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("x").as_str(), Some("x"));
        assert_eq!(Value::Int(7).as_str(), None);
        let t = TupleId::new(2, 3);
        assert_eq!(Value::Ptr(Some(t)).as_ptr(), Some(Some(t)));
    }

    #[test]
    fn conversions() {
        assert_eq!(OwnedValue::from(42i64), OwnedValue::Int(42));
        assert_eq!(OwnedValue::from("hi"), OwnedValue::Str("hi".into()));
        let v = OwnedValue::Str("abc".into());
        assert_eq!(v.as_value(), Value::Str("abc"));
        assert_eq!(Value::Str("abc").to_owned_value(), v);
    }
}
