//! Relation schemas.

use crate::error::StorageError;
use crate::value::OwnedValue;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// Variable-length string, stored in the partition heap.
    Str,
    /// Foreign-key tuple pointer (§2.1: the MM-DBMS "can substitute a
    /// tuple pointer field for the foreign key field").
    Ptr,
    /// One-to-many foreign-key pointer list.
    PtrList,
}

impl AttrType {
    /// Short name (matches [`OwnedValue::type_name`]).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Str => "str",
            AttrType::Ptr => "ptr",
            AttrType::PtrList => "ptrlist",
        }
    }

    /// Does `v` inhabit this type?
    #[must_use]
    pub fn admits(&self, v: &OwnedValue) -> bool {
        matches!(
            (self, v),
            (AttrType::Int, OwnedValue::Int(_))
                | (AttrType::Str, OwnedValue::Str(_))
                | (AttrType::Ptr, OwnedValue::Ptr(_))
                | (AttrType::PtrList, OwnedValue::PtrList(_))
        )
    }
}

/// One attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

impl Attribute {
    /// Construct an attribute.
    #[must_use]
    pub fn new(name: &str, ty: AttrType) -> Self {
        Attribute {
            name: name.to_string(),
            ty,
        }
    }
}

/// An ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes.
    #[must_use]
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Convenience constructor from `(name, type)` pairs.
    #[must_use]
    pub fn of(pairs: &[(&str, AttrType)]) -> Self {
        Schema {
            attrs: pairs.iter().map(|(n, t)| Attribute::new(n, *t)).collect(),
        }
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// All attributes in order.
    #[must_use]
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Attribute at position `i`.
    pub fn attr(&self, i: usize) -> Result<&Attribute, StorageError> {
        self.attrs.get(i).ok_or(StorageError::NoSuchAttribute(i))
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize, StorageError> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| StorageError::UnknownAttribute(name.to_string()))
    }

    /// Check a full row of values against this schema.
    pub fn check_row(&self, values: &[OwnedValue]) -> Result<(), StorageError> {
        if values.len() != self.attrs.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.attrs.len(),
                found: values.len(),
            });
        }
        for (i, (a, v)) in self.attrs.iter().zip(values).enumerate() {
            if !a.ty.admits(v) {
                return Err(StorageError::TypeMismatch {
                    attr: i,
                    expected: a.ty.name(),
                    found: v.type_name(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::TupleId;

    fn emp() -> Schema {
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("age", AttrType::Int),
            ("dept", AttrType::Ptr),
        ])
    }

    #[test]
    fn index_of_and_arity() {
        let s = emp();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("age").unwrap(), 2);
        assert!(matches!(
            s.index_of("nope"),
            Err(StorageError::UnknownAttribute(_))
        ));
        assert_eq!(s.attr(3).unwrap().ty, AttrType::Ptr);
        assert!(s.attr(9).is_err());
    }

    #[test]
    fn check_row_accepts_valid() {
        let s = emp();
        s.check_row(&[
            OwnedValue::Str("Dave".into()),
            OwnedValue::Int(23),
            OwnedValue::Int(24),
            OwnedValue::Ptr(Some(TupleId::new(0, 1))),
        ])
        .unwrap();
    }

    #[test]
    fn check_row_rejects_bad_arity_and_types() {
        let s = emp();
        assert!(matches!(
            s.check_row(&[OwnedValue::Int(1)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(&[
                OwnedValue::Int(1),
                OwnedValue::Int(2),
                OwnedValue::Int(3),
                OwnedValue::Ptr(None),
            ]),
            Err(StorageError::TypeMismatch { attr: 0, .. })
        ));
    }

    #[test]
    fn admits_covers_all_types() {
        assert!(AttrType::Int.admits(&OwnedValue::Int(1)));
        assert!(AttrType::Str.admits(&OwnedValue::Str("s".into())));
        assert!(AttrType::Ptr.admits(&OwnedValue::Ptr(None)));
        assert!(AttrType::PtrList.admits(&OwnedValue::PtrList(vec![])));
        assert!(!AttrType::Int.admits(&OwnedValue::Str("s".into())));
    }
}
