//! Restart-performance acceptance bench (DESIGN.md §16).
//!
//! Two measurements:
//!
//! 1. **Bulk vs tuple-at-a-time index rebuild** over the same 100k-row
//!    relation: the run-sort + bottom-up T-Tree build restart now uses
//!    against the old per-tuple `insert(tid)` loop. The bulk path must
//!    win by ≥ 2x — an algorithmic margin, demanded even on a single
//!    core (`verify.sh` runs this as the `recovery-accept` gate).
//! 2. **Time-to-ready vs database size vs dop** through the full
//!    `CrashedDatabase::recover_with` pipeline (catalog, working set,
//!    background, index rebuild), written to
//!    `results/recovery_scaling.csv`.
//!
//! ```sh
//! cargo run --release --example recovery_bench [--quick]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_bench::indexes::shuffled_keys;
use mmdb_bench::time_best;
use mmdb_core::{Database, IndexKind, RecoveryReport, SharedAdapter};
use mmdb_exec::ExecConfig;
use mmdb_index::sort::run_sort;
use mmdb_index::stats::Counters;
use mmdb_index::traits::OrderedIndex;
use mmdb_index::{TTree, TTreeConfig};
use mmdb_storage::{
    value_order_tag, AttrType, OwnedValue, PartitionConfig, Relation, Schema, TupleId,
};
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// T-Tree node size (the workload suites' fixed choice).
const NODE_SIZE: usize = 30;
/// The restart path's sort-kernel run length.
const RUN_LEN: usize = 16_384;
/// Rebuild-contest cardinality (the acceptance criterion's 100k).
const REBUILD_N: usize = 100_000;
/// Required bulk-over-tuple speedup.
const REQUIRED_SPEEDUP: f64 = 2.0;

fn ms(secs: f64) -> f64 {
    secs * 1e3
}

/// Part 1: rebuild one T-Tree over a shared 100k-row relation both ways.
fn rebuild_contest() -> (f64, f64) {
    let mut rel = Relation::new(
        "r",
        Schema::of(&[("k", AttrType::Int)]),
        PartitionConfig::default(),
    );
    for k in shuffled_keys(REBUILD_N, 11) {
        rel.insert(&[OwnedValue::Int(k as i64)]).expect("insert");
    }
    let rel = Arc::new(RwLock::new(rel));

    // The pre-§16 restart loop: per-tuple insertion through the adapter,
    // re-locking the relation on every comparison.
    let ((), tuple_secs) = time_best(3, || {
        let adapter = SharedAdapter::new(Arc::clone(&rel), 0);
        let mut t = TTree::new(adapter, TTreeConfig::with_node_size(NODE_SIZE));
        for tid in rel.read().iter_tids() {
            t.insert(tid);
        }
        assert_eq!(t.len(), REBUILD_N);
    });

    // The bulk path: snapshot (tag, tid) under one read guard, run-sort,
    // build bottom-up at target occupancy.
    let ((), bulk_secs) = time_best(3, || {
        let adapter = SharedAdapter::new(Arc::clone(&rel), 0);
        let tagged = {
            let r = rel.read();
            let mut v: Vec<(u64, TupleId)> = r
                .iter_tids()
                .map(|tid| (value_order_tag(&r.field(tid, 0).expect("live")), tid))
                .collect();
            let counters = Counters::default();
            run_sort(&mut v, RUN_LEN, &counters, &mut |a, b| {
                a.0.cmp(&b.0).then_with(|| {
                    r.field(a.1, 0)
                        .expect("live")
                        .total_cmp(&r.field(b.1, 0).expect("live"))
                })
            });
            v
        };
        let t = TTree::build_from_sorted(adapter, TTreeConfig::with_node_size(NODE_SIZE), tagged);
        assert_eq!(t.len(), REBUILD_N);
    });
    (tuple_secs, bulk_secs)
}

/// Build an `n`-row database (T-Tree + hash index), checkpoint, crash.
fn build_and_crash(n: usize) -> mmdb_core::CrashedDatabase<mmdb_recovery::MemDisk> {
    let mut db = Database::in_memory();
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    db.create_index("t_v", "t", "v", IndexKind::Hash).unwrap();
    let keys = shuffled_keys(n, 29);
    for chunk in keys.chunks(1_000) {
        let mut txn = db.begin();
        for k in chunk {
            db.insert(
                &mut txn,
                "t",
                vec![
                    OwnedValue::Int(*k as i64),
                    OwnedValue::Int((*k % 97) as i64),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
    }
    db.checkpoint().unwrap();
    db.crash()
}

/// Part 2: full restart wall time per (size, dop), with the report's
/// phase breakdown.
fn scaling_row(n: usize, dop: usize) -> (f64, RecoveryReport, usize) {
    let crashed = build_and_crash(n);
    let start = Instant::now();
    let (db, report) = crashed
        .recover_with(&[("t", 0)], ExecConfig::with_dop(dop))
        .expect("recovery must succeed");
    let total = start.elapsed().as_secs_f64();
    assert_eq!(db.len("t").unwrap(), n, "recovered row count");
    db.validate_indexes().unwrap();
    let loaded = report.loaded.len();
    (total, report, loaded)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    println!("== bulk vs tuple-at-a-time index rebuild ({REBUILD_N} rows) ==");
    let (tuple_secs, bulk_secs) = rebuild_contest();
    let speedup = tuple_secs / bulk_secs;
    println!(
        "tuple-at-a-time: {:>9.2} ms\nbulk build:      {:>9.2} ms\nspeedup:         {speedup:>9.2}x (required ≥ {REQUIRED_SPEEDUP}x)",
        ms(tuple_secs),
        ms(bulk_secs),
    );
    assert!(
        speedup >= REQUIRED_SPEEDUP,
        "bulk index reconstruction must be ≥ {REQUIRED_SPEEDUP}x faster than \
         tuple-at-a-time at {REBUILD_N} rows; measured {speedup:.2}x"
    );

    println!("\n== time-to-ready vs database size vs dop ==");
    let sizes: &[usize] = if quick {
        &[10_000, 30_000]
    } else {
        &[10_000, 30_000, 100_000]
    };
    let dops = [1usize, 2, 4];
    let mut csv = String::from(
        "rows,dop,total_ms,catalog_ms,working_set_ms,background_ms,index_rebuild_ms,partitions\n",
    );
    println!(
        "{:>8} {:>4} {:>10} {:>10} {:>12} {:>12} {:>14} {:>10}",
        "rows",
        "dop",
        "total ms",
        "catalog",
        "working set",
        "background",
        "index rebuild",
        "partitions"
    );
    for &n in sizes {
        for dop in dops {
            let (total, report, parts) = scaling_row(n, dop);
            let t = report.timings;
            println!(
                "{n:>8} {dop:>4} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>14.2} {parts:>10}",
                ms(total),
                ms(t.catalog.as_secs_f64()),
                ms(t.working_set.as_secs_f64()),
                ms(t.background.as_secs_f64()),
                ms(t.index_rebuild.as_secs_f64()),
            );
            csv.push_str(&format!(
                "{n},{dop},{:.3},{:.3},{:.3},{:.3},{:.3},{parts}\n",
                ms(total),
                ms(t.catalog.as_secs_f64()),
                ms(t.working_set.as_secs_f64()),
                ms(t.background.as_secs_f64()),
                ms(t.index_rebuild.as_secs_f64()),
            ));
        }
    }
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/recovery_scaling.csv", &csv).unwrap();
    println!("\nwrote results/recovery_scaling.csv");
    println!("recovery_bench: OK");
}
