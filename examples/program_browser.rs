//! One of the paper's §1 motivating applications: relational storage for
//! program information (Linton's program-development databases,
//! Horwitz/Teitelbaum's language-based editors).
//!
//! We load a call graph of a small "program" into relations and answer
//! browser-style queries: who calls `parse`, what does `main` reach,
//! which functions are dead code — all through the MM-DBMS query paths.
//!
//! ```sh
//! cargo run --example program_browser
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::Predicate;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};
use std::collections::{HashSet, VecDeque};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();

    db.create_table(
        "function",
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("file", AttrType::Str),
            ("loc", AttrType::Int),
        ]),
    )?;
    db.create_index("fn_name", "function", "name", IndexKind::Hash)?;
    db.create_index("fn_id", "function", "id", IndexKind::TTree)?;
    db.create_index("fn_loc", "function", "loc", IndexKind::TTree)?;

    db.create_table(
        "calls",
        Schema::of(&[("caller", AttrType::Int), ("callee", AttrType::Int)]),
    )?;
    db.create_index("calls_caller", "calls", "caller", IndexKind::TTree)?;
    db.create_index("calls_callee", "calls", "callee", IndexKind::TTree)?;

    // A small compiler-shaped program.
    let functions: &[(&str, i64, &str, i64)] = &[
        ("main", 0, "main.c", 42),
        ("parse", 1, "parse.c", 310),
        ("lex", 2, "lex.c", 180),
        ("typecheck", 3, "types.c", 240),
        ("codegen", 4, "gen.c", 505),
        ("optimize", 5, "opt.c", 220),
        ("emit", 6, "gen.c", 90),
        ("error", 7, "util.c", 30),
        ("dead_helper", 8, "util.c", 55),
    ];
    let edges: &[(i64, i64)] = &[
        (0, 1), // main → parse
        (0, 3), // main → typecheck
        (0, 4), // main → codegen
        (1, 2), // parse → lex
        (1, 7), // parse → error
        (3, 7),
        (4, 5),
        (4, 6),
        (5, 6),
        (2, 7),
    ];
    let mut txn = db.begin();
    for (name, id, file, loc) in functions {
        db.insert(
            &mut txn,
            "function",
            vec![(*name).into(), (*id).into(), (*file).into(), (*loc).into()],
        )?;
    }
    for (a, b) in edges {
        db.insert(&mut txn, "calls", vec![(*a).into(), (*b).into()])?;
    }
    db.commit(txn)?;

    let fn_id = |db: &Database, name: &str| -> i64 {
        let hit = db
            .select("function", "name", &Predicate::Eq(KeyValue::from(name)))
            .unwrap();
        match db.fetch("function", &hit.column(0), &["id"]).unwrap()[0][0] {
            OwnedValue::Int(i) => i,
            _ => unreachable!(),
        }
    };
    let fn_name = |db: &Database, id: i64| -> String {
        let hit = db
            .select("function", "id", &Predicate::Eq(KeyValue::Int(id)))
            .unwrap();
        match &db.fetch("function", &hit.column(0), &["name"]).unwrap()[0][0] {
            OwnedValue::Str(s) => s.clone(),
            _ => unreachable!(),
        }
    };

    // 1. Who calls `error`? (selection on the callee index)
    let err = fn_id(&db, "error");
    let callers = db.select("calls", "callee", &Predicate::Eq(KeyValue::Int(err)))?;
    let mut names: Vec<String> = db
        .fetch("calls", &callers.column(0), &["caller"])?
        .into_iter()
        .map(|row| match row[0] {
            OwnedValue::Int(i) => fn_name(&db, i),
            _ => unreachable!(),
        })
        .collect();
    names.sort();
    println!("callers of error(): {names:?}");

    // 2. Transitive closure from main: BFS, each frontier expansion is an
    //    indexed selection (this is the access pattern language editors
    //    need to be fast).
    let main_id = fn_id(&db, "main");
    let mut reached: HashSet<i64> = HashSet::new();
    let mut queue = VecDeque::from([main_id]);
    while let Some(f) = queue.pop_front() {
        if !reached.insert(f) {
            continue;
        }
        let out = db.select("calls", "caller", &Predicate::Eq(KeyValue::Int(f)))?;
        for row in db.fetch("calls", &out.column(0), &["callee"])? {
            if let OwnedValue::Int(callee) = row[0] {
                if !reached.contains(&callee) {
                    queue.push_back(callee);
                }
            }
        }
    }
    println!(
        "main() reaches {} of {} functions",
        reached.len(),
        functions.len()
    );

    // 3. Dead code: functions never called and not reachable from main.
    let mut dead = Vec::new();
    for (name, id, _, _) in functions {
        if *id == main_id {
            continue;
        }
        let callers = db.select("calls", "callee", &Predicate::Eq(KeyValue::Int(*id)))?;
        if callers.is_empty() {
            dead.push((*name).to_string());
        }
    }
    println!("never-called functions: {dead:?}");
    assert_eq!(dead, vec!["dead_helper".to_string()]);

    // 4. A join: list (caller name, callee name) pairs via the planner's
    //    chosen method, plus big-function filtering through the T-Tree.
    let (pairs, method) = db.join("calls", "callee", "function", "id")?;
    println!(
        "call edges joined to functions via {method:?}: {} rows",
        pairs.len()
    );
    let big = db.select("function", "loc", &Predicate::greater(KeyValue::Int(200)))?;
    let mut big_names: Vec<String> = db
        .fetch("function", &big.column(0), &["name"])?
        .into_iter()
        .map(|r| match &r[0] {
            OwnedValue::Str(s) => s.clone(),
            _ => unreachable!(),
        })
        .collect();
    big_names.sort();
    println!("functions over 200 LoC: {big_names:?}");
    Ok(())
}
