//! Quickstart: create a database, load data, and run the three §4 query
//! shapes — an indexed selection, a range selection, and a join.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::Predicate;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();

    // Schema: every relation needs at least one index before DML (§2.1:
    // "all access to a relation is through an index").
    db.create_table(
        "employee",
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("age", AttrType::Int),
            ("dept_id", AttrType::Int),
        ]),
    )?;
    db.create_index("emp_id", "employee", "id", IndexKind::Hash)?;
    db.create_index("emp_age", "employee", "age", IndexKind::TTree)?;
    db.create_index("emp_dept", "employee", "dept_id", IndexKind::TTree)?;

    db.create_table(
        "department",
        Schema::of(&[("name", AttrType::Str), ("id", AttrType::Int)]),
    )?;
    db.create_index("dept_id", "department", "id", IndexKind::TTree)?;

    // Load the paper's Figure 1 data in one transaction.
    let mut txn = db.begin();
    for (name, id) in [
        ("Toy", 459i64),
        ("Shoe", 409),
        ("Linen", 411),
        ("Paint", 455),
    ] {
        db.insert(&mut txn, "department", vec![name.into(), id.into()])?;
    }
    for (name, id, age, dept) in [
        ("Dave", 23i64, 24i64, 459i64),
        ("Suzan", 12, 27, 459),
        ("Yaman", 44, 54, 411),
        ("Jane", 43, 47, 411),
        ("Cindy", 22, 22, 409),
    ] {
        db.insert(
            &mut txn,
            "employee",
            vec![name.into(), id.into(), age.into(), dept.into()],
        )?;
    }
    db.commit(txn)?;

    // 1. Exact-match selection → hash lookup (the fastest §4 path).
    let hit = db.select("employee", "id", &Predicate::Eq(KeyValue::Int(44)))?;
    println!(
        "select id = 44 via {:?}: {:?}",
        db.plan_select("employee", "id", &Predicate::Eq(KeyValue::Int(44)))?,
        db.fetch("employee", &hit.column(0), &["name", "age"])?
    );

    // 2. Range selection → T-Tree lookup.
    let mid_age = db.select(
        "employee",
        "age",
        &Predicate::between(KeyValue::Int(25), KeyValue::Int(50)),
    )?;
    println!(
        "select 25 <= age <= 50 via {:?}:",
        db.plan_select(
            "employee",
            "age",
            &Predicate::between(KeyValue::Int(25), KeyValue::Int(50))
        )?
    );
    for row in db.fetch("employee", &mid_age.column(0), &["name", "age"])? {
        println!("  {row:?}");
    }

    // 3. Join: both sides have T-Trees → the planner picks Tree Merge.
    let (result, method) = db.join("employee", "dept_id", "department", "id")?;
    println!("join employee.dept_id = department.id via {method:?}:");
    for i in 0..result.pairs.len() {
        let row = result.pairs.row(i);
        let emp = db.fetch("employee", &[row[0]], &["name"])?;
        let dept = db.fetch("department", &[row[1]], &["name"])?;
        println!("  {:?} works in {:?}", emp[0][0], dept[0][0]);
    }
    println!(
        "(join did {} comparisons for {} result rows)",
        result.stats.comparisons,
        result.len()
    );

    // Update through a transaction; indexes follow automatically.
    let dave = db
        .select("employee", "id", &Predicate::Eq(KeyValue::Int(23)))?
        .column(0)[0];
    let mut txn = db.begin();
    db.update(&mut txn, "employee", dave, "age", OwnedValue::Int(25))?;
    db.commit(txn)?;
    let aged = db.select("employee", "age", &Predicate::Eq(KeyValue::Int(25)))?;
    println!(
        "after update: age-25 employees = {:?}",
        db.fetch("employee", &aged.column(0), &["name"])?
    );

    // The same join as a fluent pipeline, with EXPLAIN output.
    let result = db
        .query("employee")
        .filter("age", Predicate::greater(KeyValue::Int(25)))
        .join("dept_id", "department", "id")
        .project(&[("employee", "name"), ("department", "name")])
        .run()?;
    println!("query pipeline ({:?}):", result.columns);
    for line in result.profile.render().lines() {
        println!("  plan: {line}");
    }
    for row in &result.rows {
        println!("  {row:?}");
    }

    Ok(())
}
