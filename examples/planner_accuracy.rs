//! Planner-accuracy smoke: does the cost model's choice actually win on
//! the wall clock?
//!
//! Two workloads straddle the TreeJoin/HashJoin crossover of the §3.3.4
//! comparison formulas: a small outer probing a large indexed inner
//! (TreeJoin territory) and a large outer against a small inner (hash
//! territory). Each feasible method runs forced several times; the
//! planner's pick must land within `TOLERANCE` of the fastest measured
//! method, or the process exits non-zero. Results land in
//! `results/planner_accuracy.csv`.
//!
//! ```sh
//! cargo run --release --example planner_accuracy
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind, QueryBuilder};
use mmdb_exec::JoinMethod;
use mmdb_recovery::MemDisk;
use mmdb_storage::{AttrType, OwnedValue, Schema};
use std::time::Instant;

/// Accept the planner's pick if it is within this factor of the fastest
/// measured method (wall clocks are noisy; the cost model is counting
/// comparisons, not cache misses).
const TOLERANCE: f64 = 1.5;
const RUNS: usize = 3;

fn build_db(outer_n: usize, inner_n: usize) -> Database {
    let mut db = Database::in_memory();
    for t in ["outer", "inner"] {
        db.create_table(
            t,
            Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]),
        )
        .unwrap();
        db.create_index(&format!("{t}_pk"), t, "pk", IndexKind::TTree)
            .unwrap();
        db.create_index(&format!("{t}_jcol"), t, "jcol", IndexKind::TTree)
            .unwrap();
    }
    let mut txn = db.begin();
    for (t, n) in [("outer", outer_n), ("inner", inner_n)] {
        for i in 0..n {
            // Deterministic key mixing: roughly uniform join values with
            // partial overlap between the two sides.
            let v = ((i as i64).wrapping_mul(2_654_435_761) >> 8) % (inner_n as i64).max(1);
            db.insert(
                &mut txn,
                t,
                vec![OwnedValue::Int(i as i64), OwnedValue::Int(v)],
            )
            .unwrap();
        }
    }
    db.commit(txn).unwrap();
    db
}

fn query(db: &Database) -> QueryBuilder<'_, MemDisk> {
    db.query("outer")
        .join("jcol", "inner", "jcol")
        .project(&[("outer", "pk"), ("inner", "pk")])
}

fn time_ms(db: &Database, method: Option<JoinMethod>) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut rows = 0;
    for _ in 0..RUNS {
        let q = match method {
            Some(m) => query(db).force_join_method(m),
            None => query(db),
        };
        let t0 = Instant::now();
        let out = q.run().unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        rows = out.rows.len();
    }
    (best, rows)
}

fn main() {
    let workloads = [
        ("small_outer_large_inner", 500usize, 30_000usize),
        ("large_outer_small_inner", 30_000, 1_000),
    ];
    let methods = [
        JoinMethod::TreeMerge,
        JoinMethod::TreeJoin,
        JoinMethod::HashJoin,
        JoinMethod::SortMerge,
    ];

    let mut csv = String::from("workload,method,est_comparisons,elapsed_ms,chosen,fastest\n");
    let mut failed = false;

    for (name, outer_n, inner_n) in workloads {
        let db = build_db(outer_n, inner_n);

        // What does the planner pick, and what does it estimate?
        let planned = query(&db).run().unwrap();
        let joins = planned.profile.joins();
        let chosen = joins[0].method.unwrap();
        let mut estimates: Vec<(JoinMethod, f64)> = vec![(chosen, joins[0].est_comparisons)];
        estimates.extend(joins[0].rejected.iter().copied());

        // Measure every method, forced.
        let mut measured: Vec<(JoinMethod, f64)> = Vec::new();
        let mut expect_rows = None;
        for m in methods {
            let (ms, rows) = time_ms(&db, Some(m));
            if let Some(r) = expect_rows {
                assert_eq!(r, rows, "{name}: {m:?} changed the answer");
            }
            expect_rows = Some(rows);
            measured.push((m, ms));
        }
        let (fastest, fastest_ms) = measured
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let chosen_ms = measured
            .iter()
            .find(|(m, _)| *m == chosen)
            .map(|(_, ms)| *ms)
            .unwrap_or(f64::INFINITY);

        for (m, ms) in &measured {
            let est = estimates
                .iter()
                .find(|(em, _)| em == m)
                .map(|(_, e)| e.round() as u64)
                .unwrap_or(0);
            csv.push_str(&format!(
                "{name},{m:?},{est},{ms:.3},{},{}\n",
                *m == chosen,
                *m == fastest
            ));
        }

        let ok = chosen_ms <= fastest_ms * TOLERANCE;
        println!(
            "{name}: planner chose {chosen:?} ({chosen_ms:.2} ms), fastest {fastest:?} \
             ({fastest_ms:.2} ms) -> {}",
            if ok { "OK" } else { "VIOLATION" }
        );
        if !ok {
            failed = true;
        }
    }

    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/planner_accuracy.csv", &csv).unwrap();
    println!("wrote results/planner_accuracy.csv");

    if failed {
        eprintln!(
            "planner accuracy violation: the chosen method was more than \
             {TOLERANCE}x slower than the fastest"
        );
        std::process::exit(1);
    }
}
