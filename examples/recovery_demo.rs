//! §2.4 recovery walk-through: commit, crash, restart with the working
//! set first, and verify that exactly the committed state comes back.
//!
//! The disk copy here is a real directory of partition images
//! (`target/recovery-demo-disk/`), so you can inspect what the log device
//! wrote.
//!
//! ```sh
//! cargo run --example recovery_demo
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::Predicate;
use mmdb_recovery::FileDisk;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let disk_dir = std::env::temp_dir().join("mmqp-recovery-demo-disk");
    let _ = std::fs::remove_dir_all(&disk_dir);
    let mut db = Database::with_disk(FileDisk::open(&disk_dir)?);

    db.create_table(
        "account",
        Schema::of(&[("owner", AttrType::Str), ("balance", AttrType::Int)]),
    )?;
    db.create_index("acct_owner", "account", "owner", IndexKind::Hash)?;
    db.create_index("acct_balance", "account", "balance", IndexKind::TTree)?;

    // Committed transaction #1: initial balances.
    let mut txn = db.begin();
    for (who, amount) in [("alice", 1000i64), ("bob", 500), ("carol", 250)] {
        db.insert(&mut txn, "account", vec![who.into(), amount.into()])?;
    }
    let tids = db.commit(txn)?;
    println!("committed 3 accounts");

    // The active log device propagates committed images to the disk copy.
    db.run_log_device()?;
    let (pulled, flushed) = db.log_device_counters();
    println!("log device: pulled {pulled} records, flushed {flushed} partition images");

    // Committed transaction #2: a transfer (update two tuples).
    let mut txn = db.begin();
    db.update(
        &mut txn,
        "account",
        tids[0],
        "balance",
        OwnedValue::Int(900),
    )?;
    db.update(
        &mut txn,
        "account",
        tids[1],
        "balance",
        OwnedValue::Int(600),
    )?;
    db.commit(txn)?;
    println!("committed transfer alice→bob (NOT yet propagated to disk)");

    // Uncommitted transaction: must vanish at the crash.
    let mut doomed = db.begin();
    db.insert(
        &mut doomed,
        "account",
        vec!["mallory".into(), OwnedValue::Int(1_000_000)],
    )?;
    println!("staged mallory's uncommitted million…");

    // CRASH. The memory-resident database is gone; the stable log buffer,
    // the log device's change-accumulation log, and the disk copy survive.
    let crashed = db.crash();
    println!("-- crash --");

    // Restart: the application's current transactions need account
    // partition 0 immediately; everything else streams in afterwards.
    let (db2, report) = crashed.recover(&[("account", 0)])?;
    for (table, part, phase) in &report.loaded {
        println!("reloaded {table}[partition {part}] during {phase:?}");
    }
    println!("rebuilt {} indexes", report.indexes_rebuilt);

    // The committed transfer survived even though it was only in the log.
    let alice = db2.select("account", "owner", &Predicate::Eq(KeyValue::from("alice")))?;
    let row = db2.fetch("account", &alice.column(0), &["balance"])?;
    println!("alice's balance after recovery: {:?}", row[0][0]);
    assert_eq!(row[0][0], OwnedValue::Int(900));

    // Mallory's uncommitted insert did not.
    let mallory = db2.select(
        "account",
        "owner",
        &Predicate::Eq(KeyValue::from("mallory")),
    )?;
    assert!(mallory.is_empty());
    println!("mallory's uncommitted insert is gone — no undo was ever needed");

    println!(
        "disk copy files live in {} ({} images)",
        disk_dir.display(),
        std::fs::read_dir(&disk_dir)?.count()
    );
    Ok(())
}
