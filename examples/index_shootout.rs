//! A live miniature of Graphs 1 and 2: race all eight index structures on
//! your machine (the `figures` binary runs the full paper-scale sweeps).
//!
//! ```sh
//! cargo run --release --example index_shootout [n]
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_bench::indexes::{shuffled_keys, IndexKindB};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let node_size = 30;
    let keys = shuffled_keys(n, 1);
    let probes = shuffled_keys(n, 2);

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>14}",
        format!("structure (n={n})"),
        "build s",
        "search s",
        "mix s",
        "bytes (factor)"
    );
    let payload = (n * 8) as f64;
    for kind in IndexKindB::all() {
        let mut idx = kind.build(node_size, n);

        let t = Instant::now();
        for k in &keys {
            idx.insert(*k);
        }
        let build = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let mut hits = 0usize;
        for k in &probes {
            if idx.search(*k) {
                hits += 1;
            }
        }
        let search = t.elapsed().as_secs_f64();
        assert_eq!(hits, n);

        // 60/20/20 search/insert/delete mix.
        let t = Instant::now();
        let mut fresh = n as u64;
        for (i, k) in probes.iter().enumerate() {
            match i % 5 {
                0 => {
                    idx.delete(*k);
                }
                1 => {
                    idx.insert(fresh);
                    fresh += 1;
                }
                _ => {
                    idx.search(*k);
                }
            }
        }
        let mixed = t.elapsed().as_secs_f64();
        let bytes = idx.storage_bytes();
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>10.4} {:>9} ({:.2}x)",
            kind.name(),
            build,
            search,
            mixed,
            bytes,
            bytes as f64 / payload
        );
    }
    println!(
        "\n(Node size {node_size}; the paper's Table 1 qualitative ratings should be visible.)"
    );
}
