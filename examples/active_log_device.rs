//! The §2.4 *active* log device, live: a background thread propagates
//! committed partition images to the disk copy while the "database"
//! keeps committing — then we crash mid-stream and recover.
//!
//! This drives the recovery substrate directly (no `Database` facade) to
//! show the component protocol of Figure 2.
//!
//! ```sh
//! cargo run --example active_log_device
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_recovery::{ActiveLogDevice, MemDisk, PartitionKey, RecoveryManager, RestartPhase};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mgr = Arc::new(Mutex::new(RecoveryManager::new(MemDisk::new())));
    let device = ActiveLogDevice::spawn(Arc::clone(&mgr), Duration::from_millis(2))
        .expect("spawn log device");
    println!("log device running in the background (2 ms cycle)");

    // 200 transactions across 8 partitions, committed while the device
    // races to propagate them.
    for txn in 0..200u64 {
        let mut m = mgr.lock();
        let key = PartitionKey::new(0, (txn % 8) as u32);
        m.log_update(txn, key, format!("partition-image-v{txn}").into_bytes());
        m.commit(txn);
        drop(m);
        if txn % 50 == 49 {
            let (pulled, flushed) = mgr.lock().device_counters();
            println!("  after {txn} commits: device pulled {pulled}, flushed {flushed} images");
        }
    }

    // One uncommitted straggler that must not survive.
    mgr.lock()
        .log_update(999, PartitionKey::new(0, 0), b"uncommitted".to_vec());

    // Crash. The thread keeps the stable components; the straggler dies.
    mgr.lock().crash_volatile();
    device.shutdown().expect("device shutdown");
    println!("-- crash; device stopped --");

    // Restart with partitions 3 and 7 as the working set.
    let m = mgr.lock();
    let plan = m
        .restart(&[PartitionKey::new(0, 3), PartitionKey::new(0, 7)])
        .expect("restart");
    for (key, image, phase) in &plan {
        let tag = match phase {
            RestartPhase::WorkingSet => "WORKING SET",
            RestartPhase::Background => "background ",
        };
        println!(
            "  [{tag}] partition {} ← {}",
            key.partition,
            String::from_utf8_lossy(image)
        );
    }
    // Every partition must have recovered its newest committed image.
    assert_eq!(plan.len(), 8);
    for (key, image, _) in &plan {
        let latest = (0..200u64)
            .filter(|t| t % 8 == u64::from(key.partition))
            .max()
            .unwrap();
        assert_eq!(image, format!("partition-image-v{latest}").as_bytes());
    }
    println!("all 8 partitions recovered at their newest committed version");
}
