//! Reuse-cache demo: the acceptance run for the plan-keyed
//! intermediate-result cache.
//!
//! A repeated filter+join sub-plan runs over an unmodified relation three
//! ways — cache off, cache cold (first populating run), cache warm — and
//! the warm runs must be **bit-identical** to the cache-off runs while
//! beating them by at least [`REQUIRED_SPEEDUP`] on the wall clock. Then a
//! committed insert into the filtered relation must force the next run to
//! recompute (the new row appears; no stale entry serves). Results land in
//! `results/reuse_cache.csv`.
//!
//! ```sh
//! cargo run --release --example reuse_cache
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind, QueryBuilder};
use mmdb_recovery::MemDisk;
use mmdb_storage::{AttrType, OwnedValue, Schema};
use std::time::Instant;

/// The acceptance floor: warm cache must beat cache-off by this factor.
const REQUIRED_SPEEDUP: f64 = 5.0;
const RUNS: usize = 5;
const EMP_N: i64 = 30_000;
const DEPT_N: i64 = 64;

fn build_db() -> Database {
    let mut db = Database::in_memory();
    db.create_table(
        "emp",
        Schema::of(&[
            ("name", AttrType::Str),
            ("age", AttrType::Int),
            ("dept_id", AttrType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "dept",
        Schema::of(&[("id", AttrType::Int), ("dname", AttrType::Str)]),
    )
    .unwrap();
    // Primary keys only: the filtered attribute (age) is deliberately
    // unindexed so the cold sub-plan pays a full sequential scan — the
    // recomputation the cache is there to avoid.
    db.create_index("emp_name", "emp", "name", IndexKind::TTree)
        .unwrap();
    db.create_index("dept_id", "dept", "id", IndexKind::TTree)
        .unwrap();
    let mut txn = db.begin();
    for i in 0..DEPT_N {
        db.insert(
            &mut txn,
            "dept",
            vec![OwnedValue::Int(i), OwnedValue::Str(format!("dept-{i:02}"))],
        )
        .unwrap();
    }
    for i in 0..EMP_N {
        db.insert(
            &mut txn,
            "emp",
            vec![
                OwnedValue::Str(format!("emp-{i:05}")),
                OwnedValue::Int((i * 37) % 100),
                OwnedValue::Int(i % DEPT_N),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

/// The repeated sub-plan: unindexed selection joined to dept.
fn query(db: &Database, cache: bool) -> QueryBuilder<'_, MemDisk> {
    db.query("emp")
        .filter(
            "age",
            mmdb_exec::Predicate::greater(mmdb_storage::KeyValue::Int(98)),
        )
        .join("dept_id", "dept", "id")
        .project(&[("emp", "name"), ("dept", "dname")])
        .cache(cache)
}

/// Best-of-RUNS wall clock plus the final run's output.
fn time_query(db: &Database, cache: bool) -> (f64, mmdb_core::QueryOutput) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let o = query(db, cache).run().unwrap();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    (best, out.unwrap())
}

fn main() {
    let mut db = build_db();

    // Cache off: every run recomputes the scan + join.
    let (cold_ms, cold_out) = time_query(&db, false);

    // Populate, then measure warm (the populating run is excluded by
    // best-of taking over the later, cache-served runs).
    let (_, first) = (0, query(&db, true).run().unwrap());
    let (warm_ms, warm_out) = time_query(&db, true);
    let hits = db.cache_report().hits;

    assert_eq!(
        cold_out.rows, warm_out.rows,
        "warm cache changed the answer"
    );
    assert_eq!(cold_out.columns, warm_out.columns);
    assert!(hits >= 1, "warm runs never hit the cache");
    assert!(
        warm_out.profile.render().contains("[cached]"),
        "warm profile should show the [cached] subtree"
    );
    let speedup = cold_ms / warm_ms;

    // Write invalidation: a committed insert into emp must force the next
    // cached run to recompute and include the new row.
    let before_rows = warm_out.rows.len();
    let mut txn = db.begin();
    db.insert(
        &mut txn,
        "emp",
        vec![
            OwnedValue::Str("newcomer".into()),
            OwnedValue::Int(99),
            OwnedValue::Int(0),
        ],
    )
    .unwrap();
    db.commit(txn).unwrap();
    let t0 = Instant::now();
    let after = query(&db, true).run().unwrap();
    let recompute_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        after.rows.len(),
        before_rows + 1,
        "write must invalidate the cached sub-plan"
    );
    let oracle = query(&db, false).run().unwrap();
    assert_eq!(after.rows, oracle.rows, "post-write run must match cold");

    let mut csv = String::from("phase,config,best_ms,rows,cache_hits,speedup_vs_cache_off\n");
    csv.push_str(&format!(
        "repeat,cache_off,{cold_ms:.3},{},0,1.00\n",
        cold_out.rows.len()
    ));
    csv.push_str(&format!(
        "repeat,cache_warm,{warm_ms:.3},{},{hits},{speedup:.2}\n",
        warm_out.rows.len()
    ));
    csv.push_str(&format!(
        "write_invalidation,recompute_after_insert,{recompute_ms:.3},{},{},\n",
        after.rows.len(),
        db.cache_report().hits
    ));
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/reuse_cache.csv", &csv).unwrap();

    println!(
        "cache off  : {cold_ms:8.3} ms  ({} rows)",
        cold_out.rows.len()
    );
    println!(
        "cache warm : {warm_ms:8.3} ms  ({} rows, {hits} hits)",
        warm_out.rows.len()
    );
    println!("speedup    : {speedup:7.2}x  (required ≥ {REQUIRED_SPEEDUP}x)");
    println!(
        "post-write : {recompute_ms:8.3} ms  ({} rows — recomputed)",
        after.rows.len()
    );
    println!("wrote results/reuse_cache.csv");
    let _ = first;

    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: warm speedup {speedup:.2}x below the {REQUIRED_SPEEDUP}x floor");
        std::process::exit(1);
    }
}
