//! Reuse-cache demo: the acceptance run for the plan-keyed
//! intermediate-result cache.
//!
//! A repeated filter+join sub-plan runs over an unmodified relation three
//! ways — cache off, cache cold (first populating run), cache warm — and
//! the warm runs must be **bit-identical** to the cache-off runs while
//! beating them by at least [`REQUIRED_SPEEDUP`] on the wall clock. Then a
//! committed insert into the filtered relation must force the next run to
//! recompute (the new row appears; no stale entry serves). Results land in
//! `results/reuse_cache.csv`.
//!
//! The reuse-*optimizer* scenario (also run standalone via `--subsume`)
//! exercises the two non-exact serve modes: a narrower selection answered
//! by **re-filtering** a cached wider entry (`[cached⊆ refilter]`), and a
//! hot entry kept serviceable across a committed write burst by **delta
//! application** (`[cached+Δ]`), which must beat cold recompute on the
//! wall clock. Results land in `results/reuse_subsumption.csv`.
//!
//! ```sh
//! cargo run --release --example reuse_cache              # both scenarios
//! cargo run --release --example reuse_cache -- --subsume # optimizer only
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind, QueryBuilder};
use mmdb_recovery::MemDisk;
use mmdb_storage::{AttrType, OwnedValue, Schema};
use std::time::Instant;

/// The acceptance floor: warm cache must beat cache-off by this factor.
const REQUIRED_SPEEDUP: f64 = 5.0;
const RUNS: usize = 5;
const EMP_N: i64 = 30_000;
const DEPT_N: i64 = 64;

fn build_db() -> Database {
    let mut db = Database::in_memory();
    db.create_table(
        "emp",
        Schema::of(&[
            ("name", AttrType::Str),
            ("age", AttrType::Int),
            ("dept_id", AttrType::Int),
        ]),
    )
    .unwrap();
    db.create_table(
        "dept",
        Schema::of(&[("id", AttrType::Int), ("dname", AttrType::Str)]),
    )
    .unwrap();
    // Primary keys only: the filtered attribute (age) is deliberately
    // unindexed so the cold sub-plan pays a full sequential scan — the
    // recomputation the cache is there to avoid.
    db.create_index("emp_name", "emp", "name", IndexKind::TTree)
        .unwrap();
    db.create_index("dept_id", "dept", "id", IndexKind::TTree)
        .unwrap();
    let mut txn = db.begin();
    for i in 0..DEPT_N {
        db.insert(
            &mut txn,
            "dept",
            vec![OwnedValue::Int(i), OwnedValue::Str(format!("dept-{i:02}"))],
        )
        .unwrap();
    }
    for i in 0..EMP_N {
        db.insert(
            &mut txn,
            "emp",
            vec![
                OwnedValue::Str(format!("emp-{i:05}")),
                OwnedValue::Int((i * 37) % 100),
                OwnedValue::Int(i % DEPT_N),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

/// The repeated sub-plan: unindexed selection joined to dept.
fn query(db: &Database, cache: bool) -> QueryBuilder<'_, MemDisk> {
    db.query("emp")
        .filter(
            "age",
            mmdb_exec::Predicate::greater(mmdb_storage::KeyValue::Int(98)),
        )
        .join("dept_id", "dept", "id")
        .project(&[("emp", "name"), ("dept", "dname")])
        .cache(cache)
}

/// Best-of-RUNS wall clock plus the final run's output.
fn time_query(db: &Database, cache: bool) -> (f64, mmdb_core::QueryOutput) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let o = query(db, cache).run().unwrap();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    (best, out.unwrap())
}

/// A plain selection on the unindexed age attribute — the seq-scan
/// TempList shape eligible for subsumption re-filters and delta
/// maintenance.
fn select_query(db: &Database, lo: i64, cache: bool) -> QueryBuilder<'_, MemDisk> {
    db.query("emp")
        .filter(
            "age",
            mmdb_exec::Predicate::greater(mmdb_storage::KeyValue::Int(lo)),
        )
        .project(&[("emp", "name"), ("emp", "age")])
        .cache(cache)
}

fn time_select(db: &Database, lo: i64, cache: bool) -> (f64, mmdb_core::QueryOutput) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..RUNS {
        let t0 = Instant::now();
        let o = select_query(db, lo, cache).run().unwrap();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(o);
    }
    (best, out.unwrap())
}

const WIDE_LO: i64 = 50;
const NARROW_LO: i64 = 90;

/// The reuse-optimizer acceptance: subsumption re-filter, then delta
/// application across committed write bursts.
fn subsume_and_delta() {
    // --- subsumption: a narrow query served from a wide entry --------
    let db = build_db();
    let (cold_ms, cold_out) = time_select(&db, NARROW_LO, false);
    select_query(&db, WIDE_LO, true).run().unwrap(); // memoize wide
                                                     // Subsumed serves are never re-memoized, so every warm run below
                                                     // re-filters the wide entry — best-of times the re-filter itself.
    let (sub_ms, sub_out) = time_select(&db, NARROW_LO, true);
    assert_eq!(
        sub_out.rows, cold_out.rows,
        "subsumed serve changed the answer"
    );
    assert_eq!(sub_out.columns, cold_out.columns);
    assert!(
        sub_out.profile.render().contains("[cached⊆ refilter]"),
        "expected a subsumed serve, got:\n{}",
        sub_out.profile.render()
    );
    let subsumed_hits = db.cache_report().subsumed_hits;
    assert!(
        subsumed_hits >= RUNS as u64,
        "every warm narrow run should re-filter the wide entry"
    );

    // --- delta: a hot entry survives committed write bursts ----------
    let mut db = build_db();
    select_query(&db, NARROW_LO, true).run().unwrap(); // memoize
    let hot = select_query(&db, NARROW_LO, true).run().unwrap(); // heat
    assert!(hot.profile.render().contains("[cached]"));
    const ROUNDS: usize = 3;
    const BURST: i64 = 4;
    let mut delta_ms = f64::INFINITY;
    let mut delta_rows = 0;
    for round in 0..ROUNDS {
        let mut txn = db.begin();
        for k in 0..BURST {
            // Half the burst lands inside the cached predicate.
            let age = if k % 2 == 0 { 95 } else { 10 };
            db.insert(
                &mut txn,
                "emp",
                vec![
                    OwnedValue::Str(format!("new-{round}-{k}")),
                    OwnedValue::Int(age),
                    OwnedValue::Int(k % DEPT_N),
                ],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
        let t0 = Instant::now();
        let served = select_query(&db, NARROW_LO, true).run().unwrap();
        delta_ms = delta_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(
            served.profile.render().contains("[cached+Δ]"),
            "round {round}: expected a delta serve, got:\n{}",
            served.profile.render()
        );
        let oracle = select_query(&db, NARROW_LO, false).run().unwrap();
        assert_eq!(
            served.rows, oracle.rows,
            "round {round}: delta serve changed the answer"
        );
        delta_rows = served.rows.len();
    }
    let report = db.cache_report();
    assert!(
        report.delta_applies >= ROUNDS as u64,
        "each burst should be absorbed by delta application: {report:?}"
    );
    let (recompute_ms, _) = time_select(&db, NARROW_LO, false);
    assert!(
        delta_ms < recompute_ms,
        "delta serve ({delta_ms:.3} ms) must beat cold recompute ({recompute_ms:.3} ms)"
    );

    let mut csv = String::from("phase,config,best_ms,rows,counter\n");
    csv.push_str(&format!(
        "subsumption,cold_narrow,{cold_ms:.3},{},0\n",
        cold_out.rows.len()
    ));
    csv.push_str(&format!(
        "subsumption,subsumed_refilter,{sub_ms:.3},{},{subsumed_hits}\n",
        sub_out.rows.len()
    ));
    csv.push_str(&format!(
        "delta,delta_serve,{delta_ms:.3},{delta_rows},{}\n",
        report.delta_applies
    ));
    csv.push_str(&format!(
        "delta,recompute_cold,{recompute_ms:.3},{delta_rows},0\n"
    ));
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/reuse_subsumption.csv", &csv).unwrap();

    println!(
        "narrow cold      : {cold_ms:8.3} ms  ({} rows)",
        cold_out.rows.len()
    );
    println!(
        "subsumed refilter: {sub_ms:8.3} ms  ({} rows, {subsumed_hits} subsumed hits)",
        sub_out.rows.len()
    );
    println!(
        "delta serve      : {delta_ms:8.3} ms  ({delta_rows} rows, {} applies)",
        report.delta_applies
    );
    println!("recompute cold   : {recompute_ms:8.3} ms");
    println!("wrote results/reuse_subsumption.csv");
}

fn main() {
    if std::env::args().any(|a| a == "--subsume") {
        subsume_and_delta();
        return;
    }
    repeat_and_invalidate();
    subsume_and_delta();
}

/// The original acceptance: exact warm hits at >= 5x, then write
/// invalidation forcing a recompute.
fn repeat_and_invalidate() {
    let mut db = build_db();

    // Cache off: every run recomputes the scan + join.
    let (cold_ms, cold_out) = time_query(&db, false);

    // Populate, then measure warm (the populating run is excluded by
    // best-of taking over the later, cache-served runs).
    let (_, first) = (0, query(&db, true).run().unwrap());
    let (warm_ms, warm_out) = time_query(&db, true);
    let hits = db.cache_report().hits;

    assert_eq!(
        cold_out.rows, warm_out.rows,
        "warm cache changed the answer"
    );
    assert_eq!(cold_out.columns, warm_out.columns);
    assert!(hits >= 1, "warm runs never hit the cache");
    assert!(
        warm_out.profile.render().contains("[cached]"),
        "warm profile should show the [cached] subtree"
    );
    let speedup = cold_ms / warm_ms;

    // Write invalidation: a committed insert into emp must force the next
    // cached run to recompute and include the new row.
    let before_rows = warm_out.rows.len();
    let mut txn = db.begin();
    db.insert(
        &mut txn,
        "emp",
        vec![
            OwnedValue::Str("newcomer".into()),
            OwnedValue::Int(99),
            OwnedValue::Int(0),
        ],
    )
    .unwrap();
    db.commit(txn).unwrap();
    let t0 = Instant::now();
    let after = query(&db, true).run().unwrap();
    let recompute_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        after.rows.len(),
        before_rows + 1,
        "write must invalidate the cached sub-plan"
    );
    let oracle = query(&db, false).run().unwrap();
    assert_eq!(after.rows, oracle.rows, "post-write run must match cold");

    let mut csv = String::from("phase,config,best_ms,rows,cache_hits,speedup_vs_cache_off\n");
    csv.push_str(&format!(
        "repeat,cache_off,{cold_ms:.3},{},0,1.00\n",
        cold_out.rows.len()
    ));
    csv.push_str(&format!(
        "repeat,cache_warm,{warm_ms:.3},{},{hits},{speedup:.2}\n",
        warm_out.rows.len()
    ));
    csv.push_str(&format!(
        "write_invalidation,recompute_after_insert,{recompute_ms:.3},{},{},\n",
        after.rows.len(),
        db.cache_report().hits
    ));
    std::fs::create_dir_all("results").unwrap();
    std::fs::write("results/reuse_cache.csv", &csv).unwrap();

    println!(
        "cache off  : {cold_ms:8.3} ms  ({} rows)",
        cold_out.rows.len()
    );
    println!(
        "cache warm : {warm_ms:8.3} ms  ({} rows, {hits} hits)",
        warm_out.rows.len()
    );
    println!("speedup    : {speedup:7.2}x  (required ≥ {REQUIRED_SPEEDUP}x)");
    println!(
        "post-write : {recompute_ms:8.3} ms  ({} rows — recomputed)",
        after.rows.len()
    );
    println!("wrote results/reuse_cache.csv");
    let _ = first;

    if speedup < REQUIRED_SPEEDUP {
        eprintln!("FAIL: warm speedup {speedup:.2}x below the {REQUIRED_SPEEDUP}x floor");
        std::process::exit(1);
    }
}
