//! Multiple users, one memory-resident database (§2.4): a bank-teller
//! workload from eight client threads, executed serially by the database
//! thread — the paper's "complete serialization" regime for short
//! transactions.
//!
//! ```sh
//! cargo run --release --example multi_user
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{DbServer, IndexKind};
use mmdb_exec::Predicate;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};
use std::time::Instant;

const ACCOUNTS: i64 = 64;
const CLIENTS: usize = 8;
const TXNS_PER_CLIENT: usize = 500;

fn main() {
    let server = DbServer::in_memory();
    server.with(|db| {
        db.create_table(
            "acct",
            Schema::of(&[("owner", AttrType::Int), ("balance", AttrType::Int)]),
        )
        .unwrap();
        db.create_index("acct_owner", "acct", "owner", IndexKind::Hash)
            .unwrap();
        let mut txn = db.begin();
        for owner in 0..ACCOUNTS {
            db.insert(&mut txn, "acct", vec![owner.into(), 1000i64.into()])
                .unwrap();
        }
        db.commit(txn).unwrap();
    });

    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let client = server.client();
            std::thread::spawn(move || {
                let mut seed = (c as u64 + 1) * 0x9E37_79B9;
                for _ in 0..TXNS_PER_CLIENT {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    let from = (seed % ACCOUNTS as u64) as i64;
                    let to = ((seed >> 8) % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    // One short transfer transaction, executed atomically
                    // on the database thread.
                    client.with(move |db| {
                        let get = |db: &mmdb_core::Database, owner: i64| {
                            let hit = db
                                .select("acct", "owner", &Predicate::Eq(KeyValue::Int(owner)))
                                .unwrap();
                            let tid = hit.column(0)[0];
                            let bal = match db.fetch("acct", &[tid], &["balance"]).unwrap()[0][0] {
                                OwnedValue::Int(v) => v,
                                _ => unreachable!(),
                            };
                            (tid, bal)
                        };
                        let (ftid, fbal) = get(db, from);
                        let (ttid, tbal) = get(db, to);
                        let mut txn = db.begin();
                        db.update(
                            &mut txn,
                            "acct",
                            ftid,
                            "balance",
                            OwnedValue::Int(fbal - 10),
                        )
                        .unwrap();
                        db.update(
                            &mut txn,
                            "acct",
                            ttid,
                            "balance",
                            OwnedValue::Int(tbal + 10),
                        )
                        .unwrap();
                        db.commit(txn).unwrap();
                    });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = start.elapsed();

    let (total, n) = server.with(|db| {
        let tids = db.tids("acct").unwrap();
        let total: i64 = tids
            .iter()
            .map(
                |t| match db.fetch("acct", &[*t], &["balance"]).unwrap()[0][0] {
                    OwnedValue::Int(v) => v,
                    _ => unreachable!(),
                },
            )
            .sum();
        (total, tids.len())
    });
    println!(
        "{} clients × {} transfer txns in {:.3}s ({:.0} txn/s)",
        CLIENTS,
        TXNS_PER_CLIENT,
        elapsed.as_secs_f64(),
        (CLIENTS * TXNS_PER_CLIENT) as f64 / elapsed.as_secs_f64()
    );
    println!("accounts: {n}, total balance: {total}");
    assert_eq!(total, ACCOUNTS * 1000, "money is conserved");
    println!("money conserved under serial multi-user execution ✓");
    server.shutdown();
}
