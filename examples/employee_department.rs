//! The paper's §2.1 worked example, verbatim: foreign keys become tuple
//! pointers, enabling **precomputed joins** (Query 1) and **pointer
//! comparison joins** (Query 2).
//!
//! > Query 1: Retrieve the Employee name, Employee age, and Department
//! > name for all employees over age 65.
//! >
//! > Query 2: Retrieve the names of all employees who work in the Toy or
//! > Shoe Departments.
//!
//! ```sh
//! cargo run --example employee_department
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::print_stdout)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::{JoinMethod, Predicate};
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema, TupleId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::in_memory();

    db.create_table(
        "department",
        Schema::of(&[("name", AttrType::Str), ("id", AttrType::Int)]),
    )?;
    db.create_index("dept_name", "department", "name", IndexKind::Hash)?;
    db.create_index("dept_id", "department", "id", IndexKind::TTree)?;

    // Employee.dept is declared as a *pointer* attribute: the MM-DBMS
    // "will substitute a Department tuple pointer in its place".
    db.create_table(
        "employee",
        Schema::of(&[
            ("name", AttrType::Str),
            ("id", AttrType::Int),
            ("age", AttrType::Int),
            ("dept", AttrType::Ptr),
        ]),
    )?;
    db.create_index("emp_age", "employee", "age", IndexKind::TTree)?;
    db.create_index("emp_dept", "employee", "dept", IndexKind::Hash)?;

    // Departments first; their TupleIds become the employees' FK values.
    let mut txn = db.begin();
    for (name, id) in [
        ("Toy", 459i64),
        ("Shoe", 409),
        ("Linen", 411),
        ("Paint", 455),
    ] {
        db.insert(&mut txn, "department", vec![name.into(), id.into()])?;
    }
    let dept_tids = db.commit(txn)?;
    let dept_by_name = |db: &Database, n: &str| -> TupleId {
        db.select("department", "name", &Predicate::Eq(KeyValue::from(n)))
            .unwrap()
            .column(0)[0]
    };
    let toy = dept_by_name(&db, "Toy");
    let shoe = dept_by_name(&db, "Shoe");
    let linen = dept_by_name(&db, "Linen");
    assert_eq!(dept_tids.len(), 4);

    let mut txn = db.begin();
    for (name, id, age, dept) in [
        ("Dave", 23i64, 24i64, toy),
        ("Suzan", 12, 27, toy),
        ("Yaman", 44, 54, linen),
        ("Jane", 43, 71, linen),
        ("Cindy", 22, 22, shoe),
        ("Henry", 99, 68, shoe),
    ] {
        db.insert(
            &mut txn,
            "employee",
            vec![
                name.into(),
                id.into(),
                age.into(),
                OwnedValue::Ptr(Some(dept)),
            ],
        )?;
    }
    db.commit(txn)?;

    // ---- Query 1 --------------------------------------------------------
    // "the MM-DBMS can then simply perform the selection on the Employee
    // relation, following the Department pointer of each result tuple" —
    // no join operation at all.
    println!("Query 1: employees over 65, with department names");
    let over65 = db.select("employee", "age", &Predicate::greater(KeyValue::Int(65)))?;
    for &etid in &over65.column(0) {
        let emp = db.fetch("employee", &[etid], &["name", "age", "dept"])?;
        let OwnedValue::Ptr(Some(dtid)) = emp[0][2] else {
            continue;
        };
        let dept = db.fetch("department", &[dtid], &["name"])?;
        println!("  {:?}, {:?} → {:?}", emp[0][0], emp[0][1], dept[0][0]);
    }
    // The planner knows employee.dept is precomputed:
    assert_eq!(
        db.plan_join("employee", "dept", "department", "name")?,
        JoinMethod::Precomputed
    );

    // ---- Query 2 --------------------------------------------------------
    // Selection on Department, then a join whose comparisons are on tuple
    // POINTERS, not on data values ("it could lead to a significant cost
    // savings if the join columns were string values instead").
    println!("Query 2: employees in the Toy or Shoe departments");
    for dept_name in ["Toy", "Shoe"] {
        let dtid = dept_by_name(&db, dept_name);
        // Probe the employees' hash index on the pointer attribute with a
        // pointer key.
        let emps = db.select("employee", "dept", &Predicate::Eq(KeyValue::Ptr(dtid)))?;
        for row in db.fetch("employee", &emps.column(0), &["name"])? {
            println!("  {:?} ({dept_name})", row[0]);
        }
    }

    // The full precomputed join, §3.3.5's "beats every method".
    let (result, method) = db.join("employee", "dept", "department", "name")?;
    println!(
        "precomputed join produced {} pairs via {method:?} in {} comparisons",
        result.len(),
        result.stats.comparisons
    );
    Ok(())
}
