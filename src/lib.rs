//! `mmqp` — umbrella crate for the MM-DBMS reproduction of Lehman &
//! Carey, *Query Processing in Main Memory Database Management Systems*
//! (SIGMOD 1986).
//!
//! This crate re-exports the workspace members under stable paths; depend
//! on it to get the whole system, or on the individual `mmdb-*` crates
//! for just one substrate. See the repository README for a tour and
//! DESIGN.md for the paper-to-module map.
//!
//! ```
//! use mmqp::core::{Database, IndexKind};
//! use mmqp::exec::Predicate;
//! use mmqp::storage::{AttrType, KeyValue, Schema};
//!
//! let mut db = Database::in_memory();
//! db.create_table("emp", Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)])).unwrap();
//! db.create_index("emp_age", "emp", "age", IndexKind::TTree).unwrap();
//! let mut txn = db.begin();
//! db.insert(&mut txn, "emp", vec!["Dave".into(), 66i64.into()]).unwrap();
//! db.commit(txn).unwrap();
//! let hits = db.select("emp", "age", &Predicate::greater(KeyValue::Int(65))).unwrap();
//! assert_eq!(hits.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub use mmdb_bench as bench;
pub use mmdb_core as core;
pub use mmdb_exec as exec;
pub use mmdb_index as index;
pub use mmdb_lock as lock;
pub use mmdb_recovery as recovery;
pub use mmdb_storage as storage;
pub use mmdb_workload as workload;

/// Library version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }

    #[test]
    fn umbrella_paths_resolve() {
        // Compile-time smoke: the key public types are reachable through
        // the umbrella paths.
        use crate::core::Database;
        use crate::exec::JoinMethod;
        use crate::index::TTreeConfig;
        use crate::storage::TupleId;
        let _ = Database::in_memory();
        let _ = JoinMethod::TreeMerge;
        let _ = TTreeConfig::default();
        let _ = TupleId::null();
    }
}
