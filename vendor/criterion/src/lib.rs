//! Minimal timing-only stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion API its `[[bench]]`
//! targets use: `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` / `finish`,
//! `BenchmarkId`, and `black_box`. Each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports min / median / mean per
//! benchmark id — no statistics engine, plots, or baseline storage.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Id consisting of just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Anything accepted as a benchmark id by [`BenchmarkGroup::bench_function`].
pub trait IntoBenchmarkId {
    /// Render to the display string used in reports.
    fn into_id_string(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id_string(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_id_string(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id_string(self) -> String {
        self
    }
}

/// Per-iteration timer handle passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called in a small batch, accumulating into this sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Benchmark manager (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Parse command-line arguments (`--test` puts the runner in smoke
    /// mode: every benchmark body runs exactly once, untimed).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("group {name}");
        BenchmarkGroup {
            _parent: self,
            test_mode: self.test_mode,
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a Criterion,
    test_mode: bool,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: warm-up, then `sample_size` samples.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_id_string();
        if self.test_mode {
            let mut b = Bencher::default();
            f(&mut b);
            eprintln!("  {id}: ok (test mode)");
            return self;
        }
        // Warm-up pass.
        let mut b = Bencher::default();
        f(&mut b);
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            let iters = b.iters.max(1);
            samples.push(b.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / u32::try_from(samples.len()).unwrap_or(1);
        eprintln!("  {id}: min {min:?}  median {median:?}  mean {mean:?}");
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true, // exercise the smoke path deterministically
        };
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("f", |b| b.iter(|| hits += 1));
            g.bench_function(BenchmarkId::new("f", 7), |b| b.iter(|| hits += 1));
            g.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| hits += 1));
            g.finish();
        }
        assert_eq!(hits, 3, "test mode runs each body exactly once");
    }
}
