//! Minimal deterministic stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the API it uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `seq::SliceRandom::{shuffle, choose_multiple}`.
//!
//! The generator is SplitMix64 — statistically fine for workload
//! generation and fully deterministic, which is what the test suite and
//! benchmarks rely on. The streams differ from upstream `rand`'s, but no
//! test in this workspace asserts on upstream streams, only on
//! seed-reproducibility and distribution shape.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized + PartialOrd {
    /// Draw a uniform sample in `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u128 as u64;
                // Multiply-shift reduction; bias is < 2^-64 per draw, far
                // below anything the workload generators can observe.
                let r = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                range.start.wrapping_add(r as Self)
            }
        }
    )*};
}

impl_sample_int!(i64, u64, usize, u32, i32, u8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range: empty range");
        // 53 random mantissa bits -> unit in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Iterator over elements picked by [`SliceRandom::choose_multiple`].
    #[derive(Debug)]
    pub struct SliceChooseIter<'a, T> {
        slice: &'a [T],
        picks: std::vec::IntoIter<usize>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.picks.next().map(|i| &self.slice[i])
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.picks.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Shuffling and sampling on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Pick `amount` distinct elements (clamped to `len`), in random
        /// order, without replacement.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` slots end up a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices.truncate(amount);
            SliceChooseIter {
                slice: self,
                picks: indices.into_iter(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let u = r.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<i64> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut r = StdRng::seed_from_u64(9);
        let v: Vec<i64> = (0..50).collect();
        let picked: Vec<i64> = v.choose_multiple(&mut r, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20, "picks must be distinct");
    }
}
