//! Minimal deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the proptest API its tests use:
//! the `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, the [`strategy::Strategy`] trait with `prop_map`, integer and
//! float range strategies, tuple strategies, `Just`, `collection::vec`,
//! `bool::ANY`, `any::<T>()`, and a character-class subset of the string
//! regex strategies (`"[a-z_]{1,12}"` style patterns).
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (no OS entropy, fully reproducible runs),
//! and there is **no shrinking** — a failing case panics with the case
//! number and assertion message. That trades minimal counterexamples for
//! zero dependencies, which is the right trade for an offline CI box.

/// Deterministic RNG + config + error types for the runner.
pub mod test_runner {
    /// Error returned (via `?` or `prop_assert!`) from a test case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        reason: String,
    }

    impl TestCaseError {
        /// Fail the current case with a reason.
        pub fn fail<R: Into<String>>(reason: R) -> Self {
            TestCaseError {
                reason: reason.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.reason)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration (subset of `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator driving strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stream for one test case: seeded from the case index.
        #[must_use]
        pub fn for_case(case: u64) -> Self {
            TestRng {
                state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

/// Strategies: recipes for generating values of a type.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = self.end.wrapping_sub(self.start) as u128 as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(i64, u64, usize, u32, i32, u8, u16);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>();
            assert!(total > 0, "prop_oneof! needs at least one arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights sum checked in new()")
        }
    }

    /// Box a strategy for storage in a [`Union`] (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// String strategy from a character-class regex subset: a sequence of
    /// `[class]` groups, each with an optional `{n}` / `{lo,hi}` repeat.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let bytes = pattern.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let (alphabet, next) = parse_class(pattern, i);
            let (lo, hi, next) = parse_repeat(pattern, next);
            i = next;
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    /// Parse one `[...]` class (or a single literal char) starting at `i`;
    /// return its alphabet and the index just past it.
    fn parse_class(pattern: &str, i: usize) -> (Vec<char>, usize) {
        let bytes = pattern.as_bytes();
        if bytes[i] != b'[' {
            return (vec![bytes[i] as char], i + 1);
        }
        let close = pattern[i..]
            .find(']')
            .map(|o| i + o)
            .unwrap_or_else(|| panic!("unclosed [class] in pattern {pattern:?}"));
        let inner: Vec<char> = pattern[i + 1..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < inner.len() {
            if j + 2 < inner.len() && inner[j + 1] == '-' {
                let (lo, hi) = (inner[j], inner[j + 2]);
                for c in lo..=hi {
                    alphabet.push(c);
                }
                j += 3;
            } else {
                alphabet.push(inner[j]);
                j += 1;
            }
        }
        assert!(
            !alphabet.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        (alphabet, close + 1)
    }

    /// Parse an optional `{n}` / `{lo,hi}` repeat at `i`; return
    /// `(lo, hi, next_index)`. No braces means repeat exactly once.
    fn parse_repeat(pattern: &str, i: usize) -> (usize, usize, usize) {
        let bytes = pattern.as_bytes();
        if i >= bytes.len() || bytes[i] != b'{' {
            return (1, 1, i);
        }
        let close = pattern[i..]
            .find('}')
            .map(|o| i + o)
            .unwrap_or_else(|| panic!("unclosed {{repeat}} in pattern {pattern:?}"));
        let body = &pattern[i + 1..close];
        let (lo, hi) = match body.split_once(',') {
            Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
            None => {
                let n: usize = body.trim().parse().unwrap();
                (n, n)
            }
        };
        assert!(lo <= hi, "bad repeat {{{body}}} in pattern {pattern:?}");
        (lo, hi, close + 1)
    }
}

/// `vec` collection strategy (subset of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length uniform in `size` (half-open, like
    /// upstream's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "vec strategy size range is empty");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `bool` strategies (subset of `proptest::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy yielding arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Any boolean, 50/50.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical "any value" strategy.
pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Subset of `proptest::arbitrary::Arbitrary`: a full-range draw.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategy for any value of `A` (the `any::<A>()` entry point).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A> {
    _marker: std::marker::PhantomData<A>,
}

/// Strategy generating arbitrary values of `A`.
#[must_use]
pub fn any<A: arbitrary::Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<A: arbitrary::Arbitrary> strategy::Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut test_runner::TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}",
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a proptest body; failure fails the case (not a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::generate(&"[a-z_]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
            let t = crate::strategy::Strategy::generate(&"[a-zA-Z_][a-zA-Z0-9_]{0,20}", &mut rng);
            assert!(!t.is_empty() && t.len() <= 21);
            let head = t.chars().next().unwrap();
            assert!(head.is_ascii_alphabetic() || head == '_');
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            v in prop::collection::vec(-8i64..8, 0..40),
            n in 1usize..12,
            b in prop::bool::ANY,
            byte in any::<u8>(),
        ) {
            prop_assert!(v.iter().all(|x| (-8..8).contains(x)));
            prop_assert!((1..12).contains(&n));
            let _ = (b, byte);
        }

        #[test]
        fn oneof_and_map(
            x in prop_oneof![
                3 => (0i64..10).prop_map(|v| v * 2),
                1 => Just(-1i64),
            ],
        ) {
            prop_assert!(x == -1 || (x % 2 == 0 && (0..20).contains(&x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        #[test]
        #[should_panic(expected = "proptest case")]
        fn failures_report_case_number(x in 0i64..4) {
            prop_assert!(x < 0, "x = {}", x);
        }
    }
}
