//! Minimal std-backed stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `parking_lot` API it actually
//! uses: [`Mutex`] with a non-poisoning `lock()` that returns the guard
//! directly, and [`Condvar`] whose `wait` takes `&mut MutexGuard`.
//! Poisoning is deliberately ignored (`PoisonError::into_inner`), matching
//! parking_lot's behaviour of not propagating panics through locks.

use std::sync::PoisonError;

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`
/// for the operations this workspace performs.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, returns the guard directly (no poison result).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard returned by [`Mutex::lock`]. Wraps the std guard in an
/// `Option` so [`Condvar::wait`] can temporarily take it by `&mut`.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock` for the
/// operations this workspace performs: non-poisoning `read()`/`write()`
/// that return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempt shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII shared-read guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable, API-compatible with `parking_lot::Condvar` for the
/// operations this workspace performs (`wait` takes `&mut MutexGuard`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block on the condvar, atomically releasing the guarded mutex. The
    /// guard is reacquired before returning. Spurious wakeups possible.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u64);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_handshake() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
