#!/usr/bin/env sh
# Tier-1 verification: build, test, lint, and smoke-run the benches.
set -eux

cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Full workspace suite (crate unit tests beyond the root package).
cargo test --workspace -q

# Parallel-scaling bench, criterion --test smoke mode (runs each case once).
cargo bench -p mmdb-bench --bench scaling -- --test
