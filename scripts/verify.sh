#!/usr/bin/env sh
# Full verification: build, tests, lint gates, the mmdb-check deep
# invariant layer, and a bench smoke run — with a per-gate PASS/FAIL
# summary at the end. Exits non-zero if any gate fails.
set -u

cd "$(dirname "$0")/.."

SUMMARY=""
FAILED=0

gate() {
    name="$1"
    shift
    echo "==> $name: $*"
    if "$@"; then
        SUMMARY="$SUMMARY
PASS  $name"
    else
        SUMMARY="$SUMMARY
FAIL  $name"
        FAILED=1
    fi
}

# Tier-1: the seed contract.
gate "build-release"     cargo build --release
gate "tier1-tests"       cargo test -q

# Hygiene gates. fmt and clippy fail on any drift; the workspace lint
# table sets clippy::unwrap_used / expect_used to warn, and -D warnings
# promotes them to hard errors for library code here.
gate "fmt"               cargo fmt --check
gate "clippy-D-warnings" cargo clippy --workspace --all-targets -- -D warnings

# Every feature combination must at least typecheck.
gate "check-all-features" cargo check --workspace --all-features

# Workspace invariant linter (DESIGN.md §13): version-stamp discipline,
# lock order, panic-free hot kernels, check-feature gating. Fails on any
# unwaived finding.
gate "lint-invariants"   cargo run --release -q -p mmdb-lint -- --root . --policy mmdb-lint.policy

# Smoke-test the gate itself: inject a bump-free mutation fixture into a
# copy of the storage sources and demand the linter FAILS on it with a
# version-bump finding — proving lint-invariants can actually fail.
lint_seeded_smoke() {
    tmp=$(mktemp -d) || return 1
    mkdir -p "$tmp/crates/storage" || return 1
    cp -r crates/storage/src "$tmp/crates/storage/src" || return 1
    cp crates/storage/tests/fixtures/bump_free.rs \
       "$tmp/crates/storage/src/zz_injected_fixture.rs" || return 1
    out=$("./target/release/mmdb-lint" --root "$tmp" --policy mmdb-lint.policy 2>&1)
    status=$?
    rm -rf "$tmp"
    [ "$status" -eq 1 ] || { echo "$out"; echo "expected exit 1, got $status"; return 1; }
    echo "$out" | grep -q "version-bump" || { echo "$out"; return 1; }
}
gate "lint-seeded-smoke" lint_seeded_smoke

# Full workspace suite (crate unit tests beyond the root package).
gate "workspace-tests"   cargo test --workspace -q

# The verification layer: check-after-op hooks in the property suites,
# the checker's own self-tests, and the corruption (negative) tests.
gate "deep-check-tests"  cargo test --features check -q
gate "checker-selftests" cargo test -p mmdb-check -q

# Bounded interleaving-explorer smoke: the seeded scheduler must find
# and seed-replay the toy-lock race, and drive the real lock manager
# clean, within its bounded seed budget.
gate "explorer-smoke"    cargo test -p mmdb-check explore -q

# Planner gates: golden explain snapshots (exact plan renderings for
# every join method, pushdown, and reordering) and the accuracy smoke —
# the cost model's chosen method must land within tolerance of the
# fastest measured method (writes results/planner_accuracy.csv).
gate "plan-golden"       cargo test --test plan_explain -q
gate "planner-accuracy"  cargo run --release --example planner_accuracy

# Reuse-cache acceptance: repeated sub-plan must hit the cache with
# bit-identical rows at >= 5x warm speedup, and a committed write must
# force a recompute (writes results/reuse_cache.csv).
gate "reuse-cache-accept" cargo run --release --example reuse_cache

# Reuse-optimizer acceptance: a narrower selection must be served by
# re-filtering a cached wider entry bit-identically, and a hot entry
# must absorb committed write bursts via delta application cheaper than
# cold recompute (writes results/reuse_subsumption.csv).
gate "reuse-subsume-accept" cargo run --release --example reuse_cache -- --subsume

# Restart-performance acceptance: bulk index reconstruction must beat
# tuple-at-a-time reinsertion by >= 2x on a 100k-row rebuild (an
# algorithmic margin, demanded on a single core), and the full
# recover_with pipeline is swept across sizes and dop (writes
# results/recovery_scaling.csv).
gate "recovery-accept"   cargo run --release --example recovery_bench -- --quick

# Crash-recovery torture: scripted workloads over the fault-injecting
# disk, crashed at seeded power-cut points across a bounded seed sweep
# (64 seeds — the CI budget; any failure prints its seed for replay),
# plus the torn-write negative tests and the buggy-manager catch. Half
# the seeds restart through the parallel replay path (seed-derived dop).
gate "recovery-torture"  env MMDB_TORTURE_SEEDS=64 cargo test --test recovery_torture -q

# Multi-session serializability: seeded concurrent transaction schedules
# over the TxnEngine must admit a serial order explaining every committed
# read and the final state (64-seed sweep; MMDB_TXN_SEED replays one),
# plus the guaranteed deadlock-cycle and no-false-positive tests.
gate "txn-serializability" env MMDB_TXN_SEEDS=64 cargo test --test prop_txn -q

# Concurrent-commit crash torture: group commits from racing sessions
# against seeded power cuts; restart must recover exactly the Ok-committed
# set (64 seeds, MMDB_TORTURE_SEED replays one).
gate "txn-torture"       env MMDB_TORTURE_SEEDS=64 cargo test --test recovery_torture concurrent_commit -q

# Fault-injection smoke: the StableStore conformance suite (MemDisk,
# FileDisk, FaultyDisk passthrough) and the log-device counter/retry
# tests under injected flush failures.
gate "inject-smoke"      cargo test -p mmdb-recovery --test stable_store_conformance --test device_faults -q

# Manager-level recovery properties: random commit/abort interleavings
# must restart to exactly the latest-LSN committed images.
gate "prop-recovery"     cargo test --test prop_recovery -q

# Reuse-cache properties: random query/write interleavings — now mixing
# subsumption re-filters and delta application with writes — must
# produce cached results bit-identical to cold runs, with no stale entry
# served (64-seed sweep; MMDB_CACHE_SEED replays one).
gate "cache-prop"        env MMDB_CACHE_SEEDS=64 cargo test --test prop_cache -q

# Parallel-scaling bench, criterion --test smoke mode (each case once).
gate "bench-smoke"       cargo bench -p mmdb-bench --bench scaling -- --test

# Perf-baseline smoke: the quick-mode baseline generator must run and
# emit a file whose keys align with the checked-in BENCH_baseline.json
# (values are wall-clock and expected to move; only structure is gated).
bench_baseline_diff() {
    sh scripts/bench.sh /tmp/mmdb_bench_smoke.json || return 1
    a=$(sed 's/: [0-9]*,*$//' BENCH_baseline.json)
    b=$(sed 's/: [0-9]*,*$//' /tmp/mmdb_bench_smoke.json)
    [ "$a" = "$b" ]
}
gate "bench-baseline"    bench_baseline_diff

# Perf-regression gate: the same fresh quick-mode run, numerically diffed
# against the committed baseline — fails if any tracked kernel (join_4k/,
# dedup_4k/, scaling_10k/, reuse_10k/) is more than 25% slower than its baseline cell
# after dividing out the run-wide host-speed factor (median ratio across
# all cells, so a uniformly slower host doesn't flag every kernel). A
# failing pass re-measures in-process and keeps per-key minima before
# giving a verdict.
gate "bench-regress"     ./target/release/bench_baseline --compare BENCH_baseline.json \
                             --fresh /tmp/mmdb_bench_smoke.json

echo ""
echo "==== verification summary ===="
echo "$SUMMARY" | sed '/^$/d'
exit $FAILED
