#!/usr/bin/env sh
# Regenerate the quick-mode perf baseline (BENCH_baseline.json).
#
# Runs the bench_baseline binary: the criterion suites' workloads
# (index_ops, join_kernels, dedup, scaling) at reduced cardinalities with
# fixed seeds, best-of-3 timing, sorted JSON keys. Two runs produce files
# that align line-by-line — only the measured ns values move — so a
# regression shows up as a clean numeric diff against the checked-in
# baseline.
#
# The emitted file records host metadata (CPU count, measured per-iter
# noise floor from 3 repeats) alongside the entries, so a reader can
# judge whether a numeric diff clears the machine's jitter.
#
# usage: scripts/bench.sh [OUT_FILE]          (default BENCH_baseline.json)
#        scripts/bench.sh compare [BASELINE]  fresh run diffed against the
#                                             baseline; exits non-zero if a
#                                             tracked kernel regressed >25%
set -eu

cd "$(dirname "$0")/.."

cargo build --release -p mmdb-bench --bin bench_baseline
if [ "${1:-}" = "compare" ]; then
    exec ./target/release/bench_baseline --compare "${2:-BENCH_baseline.json}"
fi
./target/release/bench_baseline --out "${1:-BENCH_baseline.json}"
