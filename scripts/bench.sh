#!/usr/bin/env sh
# Regenerate the quick-mode perf baseline (BENCH_baseline.json).
#
# Runs the bench_baseline binary: the criterion suites' workloads
# (index_ops, join_kernels, dedup, scaling) at reduced cardinalities with
# fixed seeds, best-of-3 timing, sorted JSON keys. Two runs produce files
# that align line-by-line — only the measured ns values move — so a
# regression shows up as a clean numeric diff against the checked-in
# baseline.
#
# usage: scripts/bench.sh [OUT_FILE]   (default BENCH_baseline.json)
set -eu

cd "$(dirname "$0")/.."
OUT="${1:-BENCH_baseline.json}"

cargo build --release -p mmdb-bench --bin bench_baseline
./target/release/bench_baseline --out "$OUT"
