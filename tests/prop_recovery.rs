//! Property tests for the recovery manager under random commit/abort
//! interleavings: after `crash_volatile` + `restart`, aborted
//! transactions leave no trace and every recovered image is the
//! latest-LSN committed one — regardless of how log-device polls and
//! flushes interleaved with the transactions.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_recovery::{MemDisk, PartitionKey, RecoveryManager, RestartPhase};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const TXNS: u64 = 3;
const PARTS: u32 = 4;

/// One scripted step against the recovery manager.
#[derive(Debug, Clone)]
enum Step {
    /// Stage a log record for `txn` on partition `part`.
    Log { txn: u64, part: u32 },
    /// Commit everything `txn` has staged.
    Commit(u64),
    /// Abort `txn`: §2.4 removes its records, no undo.
    Abort(u64),
    /// Log device pulls committed records into the accumulation log.
    Poll,
    /// Full device cycle: pull + flush images to the disk copy.
    Flush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        5 => (0..TXNS, 0..PARTS).prop_map(|(txn, part)| Step::Log { txn, part }),
        2 => (0..TXNS).prop_map(Step::Commit),
        2 => (0..TXNS).prop_map(Step::Abort),
        1 => Just(Step::Poll),
        1 => Just(Step::Flush),
    ]
}

/// Outcome of driving one script: the manager (crashed), the committed
/// model (`key -> latest-LSN image`), and every image an aborted
/// transaction ever staged.
struct Driven {
    mgr: RecoveryManager<MemDisk>,
    committed: BTreeMap<PartitionKey, Vec<u8>>,
    aborted_images: BTreeSet<Vec<u8>>,
}

fn drive(steps: &[Step]) -> Driven {
    let mut mgr = RecoveryManager::new(MemDisk::new());
    let mut lsn = 0u64;
    let mut seq = 0u8;
    // Per-transaction staged records (key, lsn, image).
    let mut staged: BTreeMap<u64, Vec<(PartitionKey, u64, Vec<u8>)>> = BTreeMap::new();
    // Strict 2PL at partition granularity (the contract the lock
    // manager enforces above the log): a partition staged by one
    // in-flight transaction is not logged by another.
    let mut owner: BTreeMap<PartitionKey, u64> = BTreeMap::new();
    let mut committed: BTreeMap<PartitionKey, (u64, Vec<u8>)> = BTreeMap::new();
    let mut aborted_images: BTreeSet<Vec<u8>> = BTreeSet::new();
    for step in steps {
        match step {
            Step::Log { txn, part } => {
                let key = PartitionKey::new(0, *part);
                if *owner.get(&key).unwrap_or(txn) != *txn {
                    continue; // lock conflict: the write never happens
                }
                owner.insert(key, *txn);
                // Unique payload per record, so "no trace of aborted
                // work" is checkable on raw bytes.
                seq = seq.wrapping_add(1);
                let image = vec![*txn as u8, *part as u8, seq];
                staged
                    .entry(*txn)
                    .or_default()
                    .push((key, lsn, image.clone()));
                lsn += 1;
                mgr.log_update(*txn, key, image);
            }
            Step::Commit(txn) => {
                for (key, l, img) in staged.remove(txn).unwrap_or_default() {
                    match committed.get(&key) {
                        Some(&(have, _)) if have > l => {}
                        _ => {
                            committed.insert(key, (l, img));
                        }
                    }
                }
                owner.retain(|_, holder| holder != txn);
                mgr.commit(*txn);
            }
            Step::Abort(txn) => {
                for (_, _, img) in staged.remove(txn).unwrap_or_default() {
                    aborted_images.insert(img);
                }
                owner.retain(|_, holder| holder != txn);
                mgr.abort(*txn);
            }
            Step::Poll => mgr.run_log_device_poll_only(),
            Step::Flush => mgr.run_log_device().expect("MemDisk flush cannot fail"),
        }
    }
    // Whatever was still in flight dies with the crash — it is neither
    // committed nor (explicitly) aborted, and must equally leave no
    // trace.
    for (_, records) in staged {
        for (_, _, img) in records {
            aborted_images.insert(img);
        }
    }
    mgr.crash_volatile();
    Driven {
        mgr,
        committed: committed
            .into_iter()
            .map(|(k, (_l, img))| (k, img))
            .collect(),
        aborted_images,
    }
}

fn restart_images(
    mgr: &RecoveryManager<MemDisk>,
    working_set: &[PartitionKey],
) -> BTreeMap<PartitionKey, Vec<u8>> {
    mgr.restart(working_set)
        .expect("MemDisk restart cannot fail")
        .into_iter()
        .map(|(k, img, _phase)| (k, img))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: restart returns exactly the latest-LSN
    /// committed image per partition — no aborted or in-flight bytes.
    #[test]
    fn restart_recovers_latest_committed_images_only(
        steps in prop::collection::vec(step_strategy(), 1..50)
    ) {
        let driven = drive(&steps);
        let recovered = restart_images(&driven.mgr, &[]);
        prop_assert_eq!(&recovered, &driven.committed,
            "recovered images must be the latest-LSN committed set");
        for img in recovered.values() {
            prop_assert!(!driven.aborted_images.contains(img),
                "aborted/in-flight record resurrected: {:?}", img);
        }
    }

    /// Fanning the restart over pool workers must be invisible: for any
    /// script and any working set, `restart_with` at dop 1, 2, and 4 is
    /// bit-for-bit the serial `restart` — same keys, same images, same
    /// phases, same order.
    #[test]
    fn parallel_restart_matches_serial(
        steps in prop::collection::vec(step_strategy(), 1..50),
        ws_part in 0..PARTS,
    ) {
        let driven = drive(&steps);
        let ws = [PartitionKey::new(0, ws_part)];
        let serial = driven.mgr.restart(&ws).expect("MemDisk restart cannot fail");
        for dop in [1usize, 2, 4] {
            let parallel = driven.mgr
                .restart_with(&ws, dop)
                .expect("MemDisk restart cannot fail");
            prop_assert_eq!(&serial, &parallel,
                "restart_with(dop={}) diverged from serial restart", dop);
        }
    }

    /// Restart is read-only: running it twice (with different working
    /// sets) yields the identical image set, and naming a partition in
    /// the working set moves it to the working-set phase without
    /// changing what is recovered.
    #[test]
    fn restart_is_stable_across_working_sets(
        steps in prop::collection::vec(step_strategy(), 1..40),
        ws_part in 0..PARTS,
    ) {
        let driven = drive(&steps);
        let ws = PartitionKey::new(0, ws_part);
        let plain = restart_images(&driven.mgr, &[]);
        let with_ws = restart_images(&driven.mgr, &[ws]);
        prop_assert_eq!(&plain, &with_ws,
            "the working set prioritizes, it must not change content");
        for (key, _img, phase) in driven.mgr.restart(&[ws]).unwrap() {
            let want = if key == ws { RestartPhase::WorkingSet } else { RestartPhase::Background };
            prop_assert_eq!(phase, want, "phase mismatch for {:?}", key);
        }
    }
}
