//! Property test: every join method computes exactly the reference
//! equijoin, over arbitrary value multisets (duplicates, skew, partial
//! overlap, empty sides).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_exec::{
    hash_join, nested_loops_join, sort_merge_join, tree_join, tree_merge_join, JoinSide,
};
use mmdb_index::traits::OrderedIndex;
use mmdb_index::{TTree, TTreeConfig};
use mmdb_storage::{
    AttrAdapter, AttrType, OwnedValue, PartitionConfig, Relation, Schema, TupleId, Value,
};
use proptest::prelude::*;

fn rel_with_values(name: &str, values: &[i64]) -> (Relation, Vec<TupleId>) {
    let schema = Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]);
    let mut rel = Relation::new(name, schema, PartitionConfig::default());
    let tids = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            rel.insert(&[OwnedValue::Int(i as i64), OwnedValue::Int(*v)])
                .unwrap()
        })
        .collect();
    (rel, tids)
}

fn reference(outer: &[i64], inner: &[i64]) -> Vec<(usize, usize)> {
    let mut by_val: std::collections::HashMap<i64, Vec<usize>> = std::collections::HashMap::new();
    for (j, v) in inner.iter().enumerate() {
        by_val.entry(*v).or_default().push(j);
    }
    let mut out = Vec::new();
    for (i, v) in outer.iter().enumerate() {
        if let Some(js) = by_val.get(v) {
            out.extend(js.iter().map(|j| (i, *j)));
        }
    }
    out.sort_unstable();
    out
}

fn normalize(
    pairs: &mmdb_storage::TempList,
    outer: &Relation,
    inner: &Relation,
) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = pairs
        .iter()
        .map(|row| {
            let o = match outer.field(row[0], 0).unwrap() {
                Value::Int(i) => i as usize,
                _ => unreachable!(),
            };
            let i = match inner.field(row[1], 0).unwrap() {
                Value::Int(i) => i as usize,
                _ => unreachable!(),
            };
            (o, i)
        })
        .collect();
    out.sort_unstable();
    out
}

fn values_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    // Small key space forces heavy duplication and overlap.
    prop::collection::vec(-8i64..8, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_methods_equal_reference(
        ov in values_strategy(60),
        iv in values_strategy(60),
        node_size in 1usize..20,
    ) {
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let expect = reference(&ov, &iv);

        let mut oidx = TTree::new(
            AttrAdapter::new(&orel, 1),
            TTreeConfig::with_node_size(node_size),
        );
        for t in &otids { oidx.insert(*t); }
        let mut iidx = TTree::new(
            AttrAdapter::new(&irel, 1),
            TTreeConfig::with_node_size(node_size),
        );
        for t in &itids { iidx.insert(*t); }
        oidx.validate().unwrap();
        iidx.validate().unwrap();

        let nl = nested_loops_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&nl.pairs, &orel, &irel), expect.clone());
        let hj = hash_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&hj.pairs, &orel, &irel), expect.clone());
        let tj = tree_join(outer, &iidx).unwrap();
        prop_assert_eq!(normalize(&tj.pairs, &orel, &irel), expect.clone());
        let sm = sort_merge_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&sm.pairs, &orel, &irel), expect.clone());
        let tm = tree_merge_join(&orel, 1, &oidx, &irel, 1, &iidx).unwrap();
        prop_assert_eq!(normalize(&tm.pairs, &orel, &irel), expect);
    }

    #[test]
    fn ineq_join_equals_brute_force(
        ov in values_strategy(25),
        iv in values_strategy(25),
    ) {
        use mmdb_exec::{tree_ineq_join, IneqOp};
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let mut iidx = TTree::new(
            AttrAdapter::new(&irel, 1),
            TTreeConfig::with_node_size(4),
        );
        for t in &itids { iidx.insert(*t); }
        for (op, f) in [
            (IneqOp::Less, (|i: i64, o: i64| i < o) as fn(i64, i64) -> bool),
            (IneqOp::LessEq, |i, o| i <= o),
            (IneqOp::Greater, |i, o| i > o),
            (IneqOp::GreaterEq, |i, o| i >= o),
        ] {
            let out = tree_ineq_join(outer, inner, &iidx, op).unwrap();
            let mut expect = Vec::new();
            for (oi, o) in ov.iter().enumerate() {
                for (ii, i) in iv.iter().enumerate() {
                    if f(*i, *o) {
                        expect.push((oi, ii));
                    }
                }
            }
            expect.sort_unstable();
            prop_assert_eq!(normalize(&out.pairs, &orel, &irel), expect);
        }
    }

    #[test]
    fn projection_methods_agree(vals in values_strategy(120)) {
        use mmdb_exec::{project_hash, project_sort};
        use mmdb_storage::{OutputField, ResultDescriptor, TempList};
        let (rel, tids) = rel_with_values("p", &vals);
        let list = TempList::from_tids(tids);
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let h = project_hash(&list, &desc, &[&rel]).unwrap();
        let s = project_sort(&list, &desc, &[&rel]).unwrap();
        let mut distinct: Vec<i64> = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(h.rows.len(), distinct.len());
        prop_assert_eq!(s.rows.len(), distinct.len());
        // The surviving values are exactly the distinct set.
        let mut got: Vec<i64> = h.rows.iter().map(|r| {
            match rel.field(r[0], 1).unwrap() {
                Value::Int(i) => i,
                _ => unreachable!(),
            }
        }).collect();
        got.sort_unstable();
        prop_assert_eq!(got, distinct);
    }
}
