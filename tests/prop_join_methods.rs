//! Property test: every join method computes exactly the reference
//! equijoin, over arbitrary value multisets (duplicates, skew, partial
//! overlap, empty sides).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_exec::{
    hash_join, nested_loops_join, sort_merge_join, tree_join, tree_merge_join, JoinSide,
};
use mmdb_index::traits::OrderedIndex;
use mmdb_index::{TTree, TTreeConfig};
use mmdb_storage::{
    AttrAdapter, AttrType, OwnedValue, PartitionConfig, Relation, Schema, TupleId, Value,
};
use proptest::prelude::*;

fn rel_with_values(name: &str, values: &[i64]) -> (Relation, Vec<TupleId>) {
    let schema = Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]);
    let mut rel = Relation::new(name, schema, PartitionConfig::default());
    let tids = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            rel.insert(&[OwnedValue::Int(i as i64), OwnedValue::Int(*v)])
                .unwrap()
        })
        .collect();
    (rel, tids)
}

fn reference(outer: &[i64], inner: &[i64]) -> Vec<(usize, usize)> {
    let mut by_val: std::collections::HashMap<i64, Vec<usize>> = std::collections::HashMap::new();
    for (j, v) in inner.iter().enumerate() {
        by_val.entry(*v).or_default().push(j);
    }
    let mut out = Vec::new();
    for (i, v) in outer.iter().enumerate() {
        if let Some(js) = by_val.get(v) {
            out.extend(js.iter().map(|j| (i, *j)));
        }
    }
    out.sort_unstable();
    out
}

fn normalize(
    pairs: &mmdb_storage::TempList,
    outer: &Relation,
    inner: &Relation,
) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = pairs
        .iter()
        .map(|row| {
            let o = match outer.field(row[0], 0).unwrap() {
                Value::Int(i) => i as usize,
                _ => unreachable!(),
            };
            let i = match inner.field(row[1], 0).unwrap() {
                Value::Int(i) => i as usize,
                _ => unreachable!(),
            };
            (o, i)
        })
        .collect();
    out.sort_unstable();
    out
}

fn values_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    // Small key space forces heavy duplication and overlap.
    prop::collection::vec(-8i64..8, 0..max_len)
}

/// Suffixes appended to a shared 8-byte prefix: the sort kernels' order
/// tags (first 8 bytes, big-endian) collide on every pair of these keys.
const SUFFIXES: [&str; 6] = ["", "a", "b", "ab", "z", "zz"];

fn rel_with_strings(name: &str, values: &[String]) -> (Relation, Vec<TupleId>) {
    let schema = Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Str)]);
    let mut rel = Relation::new(name, schema, PartitionConfig::default());
    let tids = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            rel.insert(&[OwnedValue::Int(i as i64), OwnedValue::Str(v.clone())])
                .unwrap()
        })
        .collect();
    (rel, tids)
}

fn reference_str(outer: &[String], inner: &[String]) -> Vec<(usize, usize)> {
    let mut by_val: std::collections::HashMap<&str, Vec<usize>> = std::collections::HashMap::new();
    for (j, v) in inner.iter().enumerate() {
        by_val.entry(v).or_default().push(j);
    }
    let mut out = Vec::new();
    for (i, v) in outer.iter().enumerate() {
        if let Some(js) = by_val.get(v.as_str()) {
            out.extend(js.iter().map(|j| (i, *j)));
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_methods_equal_reference(
        ov in values_strategy(60),
        iv in values_strategy(60),
        node_size in 1usize..20,
    ) {
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let expect = reference(&ov, &iv);

        let mut oidx = TTree::new(
            AttrAdapter::new(&orel, 1),
            TTreeConfig::with_node_size(node_size),
        );
        for t in &otids { oidx.insert(*t); }
        let mut iidx = TTree::new(
            AttrAdapter::new(&irel, 1),
            TTreeConfig::with_node_size(node_size),
        );
        for t in &itids { iidx.insert(*t); }
        oidx.validate().unwrap();
        iidx.validate().unwrap();

        let nl = nested_loops_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&nl.pairs, &orel, &irel), expect.clone());
        let hj = hash_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&hj.pairs, &orel, &irel), expect.clone());
        let tj = tree_join(outer, &iidx).unwrap();
        prop_assert_eq!(normalize(&tj.pairs, &orel, &irel), expect.clone());
        let sm = sort_merge_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&sm.pairs, &orel, &irel), expect.clone());
        let tm = tree_merge_join(&orel, 1, &oidx, &irel, 1, &iidx).unwrap();
        prop_assert_eq!(normalize(&tm.pairs, &orel, &irel), expect);
    }

    #[test]
    fn ineq_join_equals_brute_force(
        ov in values_strategy(25),
        iv in values_strategy(25),
    ) {
        use mmdb_exec::{tree_ineq_join, IneqOp};
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let mut iidx = TTree::new(
            AttrAdapter::new(&irel, 1),
            TTreeConfig::with_node_size(4),
        );
        for t in &itids { iidx.insert(*t); }
        for (op, f) in [
            (IneqOp::Less, (|i: i64, o: i64| i < o) as fn(i64, i64) -> bool),
            (IneqOp::LessEq, |i, o| i <= o),
            (IneqOp::Greater, |i, o| i > o),
            (IneqOp::GreaterEq, |i, o| i >= o),
        ] {
            let out = tree_ineq_join(outer, inner, &iidx, op).unwrap();
            let mut expect = Vec::new();
            for (oi, o) in ov.iter().enumerate() {
                for (ii, i) in iv.iter().enumerate() {
                    if f(*i, *o) {
                        expect.push((oi, ii));
                    }
                }
            }
            expect.sort_unstable();
            prop_assert_eq!(normalize(&out.pairs, &orel, &irel), expect);
        }
    }

    #[test]
    fn string_keys_with_colliding_tags_agree_with_reference(
        osuf in prop::collection::vec(0usize..SUFFIXES.len(), 0..40),
        isuf in prop::collection::vec(0usize..SUFFIXES.len(), 0..40),
    ) {
        // Every key shares an 8-byte prefix, so every sort tag collides
        // and the tag-sorting kernels must fall back to full string
        // comparison for order, equality, and dedup.
        let ov: Vec<String> = osuf.iter().map(|i| format!("prefix00{}", SUFFIXES[*i])).collect();
        let iv: Vec<String> = isuf.iter().map(|i| format!("prefix00{}", SUFFIXES[*i])).collect();
        let (orel, otids) = rel_with_strings("o", &ov);
        let (irel, itids) = rel_with_strings("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let expect = reference_str(&ov, &iv);
        let sm = sort_merge_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&sm.pairs, &orel, &irel), expect.clone());
        let hj = hash_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&hj.pairs, &orel, &irel), expect.clone());
        let nl = nested_loops_join(outer, inner).unwrap();
        prop_assert_eq!(normalize(&nl.pairs, &orel, &irel), expect);

        // Dedup over the same colliding tags: sort path == hash path.
        use mmdb_exec::{project_hash, project_sort};
        use mmdb_storage::{OutputField, ResultDescriptor, TempList};
        let list = TempList::from_tids(otids.clone());
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let h = project_hash(&list, &desc, &[&orel]).unwrap();
        let s = project_sort(&list, &desc, &[&orel]).unwrap();
        let mut distinct = ov.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(h.rows.len(), distinct.len());
        prop_assert_eq!(s.rows.len(), distinct.len());
    }

    #[test]
    fn projection_methods_agree(vals in values_strategy(120)) {
        use mmdb_exec::{project_hash, project_sort};
        use mmdb_storage::{OutputField, ResultDescriptor, TempList};
        let (rel, tids) = rel_with_values("p", &vals);
        let list = TempList::from_tids(tids);
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let h = project_hash(&list, &desc, &[&rel]).unwrap();
        let s = project_sort(&list, &desc, &[&rel]).unwrap();
        let mut distinct: Vec<i64> = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(h.rows.len(), distinct.len());
        prop_assert_eq!(s.rows.len(), distinct.len());
        // The surviving values are exactly the distinct set.
        let mut got: Vec<i64> = h.rows.iter().map(|r| {
            match rel.field(r[0], 1).unwrap() {
                Value::Int(i) => i,
                _ => unreachable!(),
            }
        }).collect();
        got.sort_unstable();
        prop_assert_eq!(got, distinct);
    }
}

/// The run-formation sort quicksorts 16,384-entry (256 KiB of 16-byte
/// pairs) runs and d-ary-merges them; inputs below that size exercise
/// only the single-run path. This input spans three runs (including a
/// short final run), so the heap merge, run exhaustion, and cross-run
/// group detection all engage.
#[test]
fn sort_merge_and_dedup_across_multiple_sort_runs() {
    const N: usize = 36_000;
    // A fixed permutation of 0..N (7919 is coprime to 36_000), so the
    // runs' value ranges interleave heavily and no run drains in one go.
    let ov: Vec<i64> = (0..N).map(|i| ((i * 7919) % N) as i64).collect();
    // Inner hits every 50th key exactly once.
    let iv: Vec<i64> = (0..N as i64 / 50).map(|i| i * 50).collect();
    let (orel, otids) = rel_with_values("o", &ov);
    let (irel, itids) = rel_with_values("i", &iv);
    let outer = JoinSide::new(&orel, 1, &otids);
    let inner = JoinSide::new(&irel, 1, &itids);
    let sm = sort_merge_join(outer, inner).unwrap();
    assert_eq!(normalize(&sm.pairs, &orel, &irel), reference(&ov, &iv));

    // Dedup across the same run boundaries: every value appears 4× in a
    // permuted order, so equal keys land in different sort runs.
    use mmdb_exec::{project_hash, project_sort};
    use mmdb_storage::{OutputField, ResultDescriptor, TempList};
    let dv: Vec<i64> = (0..N).map(|i| ((i * 7919) % N) as i64 / 4).collect();
    let (drel, dtids) = rel_with_values("d", &dv);
    let list = TempList::from_tids(dtids);
    let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
    let h = project_hash(&list, &desc, &[&drel]).unwrap();
    let s = project_sort(&list, &desc, &[&drel]).unwrap();
    assert_eq!(h.rows.len(), N / 4);
    assert_eq!(s.rows.len(), N / 4);
}
