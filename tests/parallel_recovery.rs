//! Parallel restart equivalence: recovering the same crashed database
//! through `recover_with` at dop 1, 2, and 4 must produce bit-for-bit
//! the same database as the serial `recover` — same tuple ids, same
//! rows, same partition versions, same load order, same rebuilt
//! indexes. The dop only changes *when* work runs, never *what* it
//! computes (DESIGN.md §16).
//!
//! The workload is seeded and fault-free (fault interactions are the
//! torture suite's job): run the identical script once per dop, crash,
//! recover at that dop, and compare full-state digests.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{CrashedDatabase, Database, IndexKind, RecoveryReport};
use mmdb_exec::ExecConfig;
use mmdb_recovery::{MemDisk, RestartPhase, SplitMix64};
use mmdb_storage::{AttrType, OwnedValue, Schema, TupleId};

/// Ops per scripted run — enough to spread rows over several partitions
/// and leave a mix of checkpointed, device-resident, and buffer-only
/// images behind at the crash.
const SCRIPT_LEN: u64 = 120;

/// Run the seeded workload to the same crash point every time.
fn build_crashed(seed: u64) -> CrashedDatabase<MemDisk> {
    let mut db = Database::in_memory();
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .unwrap();
    // One index of each kind, so both bulk rebuild paths (run-sort +
    // bottom-up T-Tree, pre-sized hash fill) are on the recovery path.
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    db.create_index("t_v", "t", "v", IndexKind::Hash).unwrap();
    let mut rng = SplitMix64::new(seed);
    let mut live: Vec<TupleId> = Vec::new();
    let mut next_key = 0i64;
    for _ in 0..SCRIPT_LEN {
        match rng.next_u64() % 10 {
            0..=4 => {
                let n = 1 + rng.next_u64() % 4;
                let mut txn = db.begin();
                for _ in 0..n {
                    let k = next_key;
                    next_key += 1;
                    db.insert(
                        &mut txn,
                        "t",
                        vec![OwnedValue::Int(k), OwnedValue::Int(k % 17)],
                    )
                    .unwrap();
                }
                live.extend(db.commit(txn).unwrap());
            }
            5 => {
                if live.is_empty() {
                    continue;
                }
                let tid = live[(rng.next_u64() as usize) % live.len()];
                let v = (rng.next_u64() % 1000) as i64;
                let mut txn = db.begin();
                db.update(&mut txn, "t", tid, "v", OwnedValue::Int(v))
                    .unwrap();
                db.commit(txn).unwrap();
            }
            6 => {
                if live.is_empty() {
                    continue;
                }
                let pick = (rng.next_u64() as usize) % live.len();
                let tid = live.swap_remove(pick);
                let mut txn = db.begin();
                db.delete(&mut txn, "t", tid).unwrap();
                db.commit(txn).unwrap();
            }
            7 => {
                // Staged-then-aborted work: must leave no trace at any dop.
                let mut txn = db.begin();
                db.insert(
                    &mut txn,
                    "t",
                    vec![OwnedValue::Int(-1), OwnedValue::Int(-1)],
                )
                .unwrap();
                db.abort(txn);
            }
            8 => db.run_log_device().unwrap(),
            _ => {
                db.checkpoint().unwrap();
            }
        }
    }
    db.crash()
}

/// Everything observable about the recovered table: partition versions,
/// tuple ids, and full rows, in storage order.
type Digest = (Vec<u64>, Vec<(TupleId, Vec<OwnedValue>)>);

fn digest(db: &Database<MemDisk>) -> Digest {
    let versions = db
        .with_relation("t", |r| r.partition_versions().to_vec())
        .unwrap();
    let tids = db.tids("t").unwrap();
    let rows = db.fetch("t", &tids, &["k", "v"]).unwrap();
    (versions, tids.into_iter().zip(rows).collect())
}

/// Recover at `dop` and return the digest plus the report.
fn recover_at(seed: u64, dop: usize) -> (Digest, RecoveryReport, Database<MemDisk>) {
    let crashed = build_crashed(seed);
    let (db, report) = crashed
        .recover_with(&[("t", 0), ("t", 1)], ExecConfig::with_dop(dop))
        .expect("fault-free recovery must succeed");
    (digest(&db), report, db)
}

#[test]
fn parallel_recovery_bit_identical_across_dop() {
    for seed in [0u64, 1, 2, 17, 99] {
        // Serial baseline through the default `recover` entry point.
        let crashed = build_crashed(seed);
        let (base_db, base_report) = crashed.recover(&[("t", 0), ("t", 1)]).unwrap();
        let base = digest(&base_db);
        assert!(
            !base.1.is_empty(),
            "seed {seed}: workload committed no rows — test is vacuous"
        );
        for dop in [1usize, 2, 4] {
            let (state, report, db) = recover_at(seed, dop);
            assert_eq!(
                base, state,
                "seed {seed}: dop {dop} recovered a different database state"
            );
            // The report's content (not its wall times) is equally
            // deterministic: same load order, same rebuild counts.
            assert_eq!(base_report.loaded, report.loaded, "seed {seed}, dop {dop}");
            assert_eq!(
                base_report.indexes_rebuilt, report.indexes_rebuilt,
                "seed {seed}, dop {dop}"
            );
            let names: Vec<(&str, usize)> = report
                .index_stats
                .iter()
                .map(|s| (s.name.as_str(), s.entries))
                .collect();
            assert_eq!(
                names,
                vec![("t_k", base.1.len()), ("t_v", base.1.len())],
                "seed {seed}, dop {dop}: per-index rebuild stats"
            );
            db.validate_indexes().unwrap();
            #[cfg(feature = "check")]
            db.deep_check().into_result().unwrap_or_else(|e| {
                panic!("seed {seed}, dop {dop}: deep check over bulk-built indexes:\n{e}")
            });
        }
    }
}

#[test]
fn working_set_loads_first_at_every_dop() {
    for dop in [1usize, 4] {
        let (_, report, _) = recover_at(7, dop);
        assert!(!report.loaded.is_empty());
        // Working-set entries form a prefix of the load order.
        let first_bg = report
            .loaded
            .iter()
            .position(|(_, _, ph)| *ph == RestartPhase::Background)
            .unwrap_or(report.loaded.len());
        assert!(
            report.loaded[first_bg..]
                .iter()
                .all(|(_, _, ph)| *ph == RestartPhase::Background),
            "dop {dop}: a working-set partition loaded after the background phase began"
        );
        let ws: Vec<u32> = report.loaded[..first_bg]
            .iter()
            .map(|(_, p, _)| *p)
            .collect();
        // Requested partitions with a recoverable image, in request
        // order (a requested partition nothing was ever logged for is
        // rightly absent).
        let want: Vec<u32> = [0u32, 1]
            .iter()
            .copied()
            .filter(|p| ws.contains(p))
            .collect();
        assert_eq!(
            ws, want,
            "dop {dop}: working set must load in request order"
        );
        assert!(
            ws.contains(&0),
            "dop {dop}: partition 0 always has an image in this workload"
        );
    }
}
