//! Property tests: every index structure, driven over relations through
//! tuple-pointer adapters (the §2.2 configuration), stays equivalent to a
//! model under arbitrary operation sequences.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::SharedAdapter;
use mmdb_index::traits::{OrderedIndex, UnorderedIndex};
use mmdb_index::{
    ArrayIndex, AvlTree, BTree, ChainedBucketHash, ExtendibleHash, LinearHash, ModifiedLinearHash,
    TTree, TTreeConfig,
};
use mmdb_storage::{
    AttrType, KeyValue, OwnedValue, PartitionConfig, Relation, Schema, TupleId, Value,
};
use parking_lot::RwLock;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64),
    DeleteKey(i64),
    Search(i64),
    Range(i64, i64),
}

fn ops_strategy(n: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (-40i64..40).prop_map(Op::Insert),
            2 => (-40i64..40).prop_map(Op::DeleteKey),
            2 => (-40i64..40).prop_map(Op::Search),
            1 => ((-40i64..40), (-40i64..40)).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
        ],
        0..n,
    )
}

/// Model: multiset of keys → count, plus a tuple-id pool per key.
#[derive(Default)]
struct Model {
    by_key: BTreeMap<i64, Vec<TupleId>>,
}

impl Model {
    fn len(&self) -> usize {
        self.by_key.values().map(Vec::len).sum()
    }
}

fn key_of(rel: &Relation, tid: TupleId) -> i64 {
    match rel.field(tid, 0).unwrap() {
        Value::Int(i) => i,
        _ => unreachable!(),
    }
}

macro_rules! drive {
    ($idx:expr, $rel:expr, $ops:expr) => {{
        let idx = &mut $idx;
        let rel = &$rel;
        let mut model = Model::default();
        for op in $ops {
            match op {
                Op::Insert(k) => {
                    let tid = rel.write().insert(&[OwnedValue::Int(*k)]).unwrap();
                    idx.insert(tid);
                    model.by_key.entry(*k).or_default().push(tid);
                }
                Op::DeleteKey(k) => {
                    let got = idx.delete(&KeyValue::Int(*k));
                    let entry = model.by_key.get_mut(k);
                    match (got, entry) {
                        (Some(tid), Some(pool)) => {
                            let r = rel.read();
                            prop_assert_eq!(key_of(&r, tid), *k);
                            drop(r);
                            let pos = pool.iter().position(|t| *t == tid).expect("tid in model");
                            pool.remove(pos);
                            if pool.is_empty() {
                                model.by_key.remove(k);
                            }
                            // Keep relation in sync: tuple removed.
                            rel.write().delete(tid).unwrap();
                        }
                        (None, None) => {}
                        (None, Some(pool)) if pool.is_empty() => {}
                        (got, entry) => {
                            let pool_size = entry.map(|p| p.len());
                            prop_assert!(
                                false,
                                "delete({}) => {:?} but model had {:?}",
                                k,
                                got,
                                pool_size
                            );
                        }
                    }
                }
                Op::Search(k) => {
                    let got = idx.search(&KeyValue::Int(*k));
                    let expect = model.by_key.get(k).map_or(0, Vec::len);
                    prop_assert_eq!(got.is_some(), expect > 0, "search({})", k);
                    let mut all = Vec::new();
                    idx.search_all(&KeyValue::Int(*k), &mut all);
                    prop_assert_eq!(all.len(), expect, "search_all({})", k);
                }
                Op::Range(_, _) => { /* handled in the ordered macro */ }
            }
            prop_assert_eq!(idx.len(), model.len());
            // Check-after-op: with the verification layer on, re-derive
            // every structural invariant after every single operation.
            #[cfg(all(feature = "check", debug_assertions))]
            mmdb_check::DeepCheck::deep_check(&*idx)
                .into_result()
                .map_err(TestCaseError::fail)?;
        }
        idx.validate().map_err(|e| TestCaseError::fail(e))?;
        #[cfg(all(feature = "check", debug_assertions))]
        mmdb_check::DeepCheck::deep_check(&*idx)
            .into_result()
            .map_err(TestCaseError::fail)?;
        model
    }};
}

macro_rules! drive_ordered {
    ($idx:expr, $rel:expr, $ops:expr) => {{
        let model = drive!($idx, $rel, $ops);
        // Ordered extras: full scan sorted + range correctness.
        let mut scanned: Vec<i64> = Vec::new();
        {
            let r = $rel.read();
            $idx.scan(&mut |t| scanned.push(key_of(&r, *t)));
        }
        let mut expect: Vec<i64> = model
            .by_key
            .iter()
            .flat_map(|(k, pool)| std::iter::repeat(*k).take(pool.len()))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(&scanned, &expect, "ordered scan");
        for op in $ops {
            if let Op::Range(lo, hi) = op {
                let mut out = Vec::new();
                $idx.range(
                    std::ops::Bound::Included(&KeyValue::Int(*lo)),
                    std::ops::Bound::Included(&KeyValue::Int(*hi)),
                    &mut out,
                );
                let expect_n: usize = model
                    .by_key
                    .range(*lo..=*hi)
                    .map(|(_, pool)| pool.len())
                    .sum();
                prop_assert_eq!(out.len(), expect_n, "range [{}, {}]", lo, hi);
            }
        }
    }};
}

/// A shared relation plus its index adapter: `SharedAdapter` performs
/// each comparison inside a short read lock, so the test can
/// interleave relation mutations with index operations — exactly how the
/// `mmdb_core::Database` wires indexes to relations.
fn fresh_rel() -> (Arc<RwLock<Relation>>, SharedAdapter) {
    let rel = Arc::new(RwLock::new(Relation::new(
        "t",
        Schema::of(&[("k", AttrType::Int)]),
        PartitionConfig::default(),
    )));
    let adapter = SharedAdapter::new(Arc::clone(&rel), 0);
    (rel, adapter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ttree_model_equivalence(ops in ops_strategy(120), ns in 1usize..12) {
        let (rel, adapter) = fresh_rel();
        let mut idx = TTree::new(adapter, TTreeConfig::with_node_size(ns));
        drive_ordered!(idx, rel, &ops);
    }

    #[test]
    fn btree_model_equivalence(ops in ops_strategy(120), ns in 2usize..12) {
        let (rel, adapter) = fresh_rel();
        let mut idx = BTree::new(adapter, ns);
        drive_ordered!(idx, rel, &ops);
    }

    #[test]
    fn avl_model_equivalence(ops in ops_strategy(120)) {
        let (rel, adapter) = fresh_rel();
        let mut idx = AvlTree::new(adapter);
        drive_ordered!(idx, rel, &ops);
    }

    #[test]
    fn array_model_equivalence(ops in ops_strategy(80)) {
        let (rel, adapter) = fresh_rel();
        let mut idx = ArrayIndex::new(adapter);
        drive_ordered!(idx, rel, &ops);
    }

    #[test]
    fn chained_model_equivalence(ops in ops_strategy(120)) {
        let (rel, adapter) = fresh_rel();
        let mut idx = ChainedBucketHash::with_capacity(adapter, 32);
        drive!(idx, rel, &ops);
    }

    #[test]
    fn extendible_model_equivalence(ops in ops_strategy(120), cap in 1usize..8) {
        let (rel, adapter) = fresh_rel();
        let mut idx = ExtendibleHash::new(adapter, cap);
        drive!(idx, rel, &ops);
    }

    #[test]
    fn linear_model_equivalence(ops in ops_strategy(120), cap in 1usize..8) {
        let (rel, adapter) = fresh_rel();
        let mut idx = LinearHash::new(adapter, cap);
        drive!(idx, rel, &ops);
    }

    #[test]
    fn modlinear_model_equivalence(ops in ops_strategy(120), chain in 1usize..6) {
        let (rel, adapter) = fresh_rel();
        let mut idx = ModifiedLinearHash::new(adapter, chain);
        drive!(idx, rel, &ops);
    }
}
