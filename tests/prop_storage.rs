//! Property tests for the storage substrate: relations vs a model under
//! arbitrary operation sequences, partition byte-image roundtrips, and
//! catalog codec roundtrips with arbitrary schemas.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::catalog::{decode_catalog, encode_catalog, CatalogMeta, IndexMeta, TableMeta};
use mmdb_core::IndexKind;
use mmdb_storage::{
    AttrType, Attribute, OwnedValue, PartitionConfig, Relation, Schema, TupleId, Value,
};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { name: String, age: i64 },
    Delete(usize),
    UpdateAge { index: usize, age: i64 },
    GrowName { index: usize, extra: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => ("[a-z]{0,12}", -1000i64..1000).prop_map(|(name, age)| Op::Insert { name, age }),
        2 => (0usize..64).prop_map(Op::Delete),
        2 => ((0usize..64), (-1000i64..1000)).prop_map(|(index, age)| Op::UpdateAge { index, age }),
        1 => ((0usize..64), (1usize..120)).prop_map(|(index, extra)| Op::GrowName { index, extra }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relation_equals_model(ops in prop::collection::vec(op_strategy(), 0..80)) {
        // Tiny partitions force spills, relocation, and forwarding.
        let mut rel = Relation::new(
            "t",
            Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)]),
            PartitionConfig::tiny(),
        );
        let mut model: HashMap<TupleId, (String, i64)> = HashMap::new();
        let mut handles: Vec<TupleId> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert { name, age } => {
                    let tid = rel
                        .insert(&[OwnedValue::Str(name.clone()), OwnedValue::Int(*age)])
                        .unwrap();
                    prop_assert!(!model.contains_key(&tid), "tid reuse while live");
                    model.insert(tid, (name.clone(), *age));
                    handles.push(tid);
                }
                Op::Delete(i) => {
                    if handles.is_empty() { continue; }
                    let tid = handles[i % handles.len()];
                    // Only delete live tuples: a stale handle's slot may
                    // have been legitimately reused by a later insert
                    // (TupleIds are stable for the *lifetime* of a tuple,
                    // §2.1 — not beyond it).
                    if model.remove(&tid).is_some() {
                        rel.delete(tid).unwrap();
                    }
                }
                Op::UpdateAge { index, age } => {
                    if handles.is_empty() { continue; }
                    let tid = handles[index % handles.len()];
                    if let Some(entry) = model.get_mut(&tid) {
                        rel.update_field(tid, 1, &OwnedValue::Int(*age)).unwrap();
                        entry.1 = *age;
                    }
                }
                Op::GrowName { index, extra } => {
                    if handles.is_empty() { continue; }
                    let tid = handles[index % handles.len()];
                    if let Some(entry) = model.get_mut(&tid) {
                        let mut grown = format!("{}{}", entry.0, "x".repeat(*extra));
                        // A value larger than a whole partition heap can
                        // never be stored (tiny partitions have 256-byte
                        // heaps) — the engine reports HeapExhausted for
                        // it, which is correct but not what this property
                        // is about. Stay under the hard cap.
                        grown.truncate(180);
                        rel.update_field(tid, 0, &OwnedValue::Str(grown.clone())).unwrap();
                        entry.0 = grown;
                    }
                }
            }
        }
        // Full cross-check: every model tuple readable via its ORIGINAL id
        // (forwarding must be transparent), count matches, tids() agrees.
        prop_assert_eq!(rel.len(), model.len());
        #[cfg(all(feature = "check", debug_assertions))]
        mmdb_check::storage_checks::check_relation(&rel)
            .into_result()
            .map_err(TestCaseError::fail)?;
        for (tid, (name, age)) in &model {
            prop_assert_eq!(rel.field(*tid, 0).unwrap(), Value::Str(name));
            prop_assert_eq!(rel.field(*tid, 1).unwrap(), Value::Int(*age));
        }
        let mut live: Vec<TupleId> = rel.tids();
        let mut expect: Vec<TupleId> = model
            .keys()
            .map(|t| rel.resolve(*t).unwrap())
            .collect();
        live.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(live, expect);
    }

    #[test]
    fn partition_images_roundtrip_under_churn(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut rel = Relation::new(
            "t",
            Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)]),
            PartitionConfig::tiny(),
        );
        let mut handles = Vec::new();
        for op in &ops {
            match op {
                Op::Insert { name, age } => {
                    handles.push(
                        rel.insert(&[OwnedValue::Str(name.clone()), OwnedValue::Int(*age)])
                            .unwrap(),
                    );
                }
                Op::Delete(i) if !handles.is_empty() => {
                    let tid = handles[i % handles.len()];
                    let _ = rel.delete(tid);
                }
                _ => {}
            }
        }
        // Image every partition, load into a twin, compare contents.
        let mut twin = Relation::new(
            "t",
            Schema::of(&[("name", AttrType::Str), ("age", AttrType::Int)]),
            PartitionConfig::tiny(),
        );
        for p in 0..rel.partition_count() {
            let img = rel.partition_image(p as u32).unwrap();
            twin.load_partition_image(p as u32, &img).unwrap();
            #[cfg(all(feature = "check", debug_assertions))]
            mmdb_check::storage_checks::check_relation(&twin)
                .into_result()
                .map_err(TestCaseError::fail)?;
        }
        prop_assert_eq!(twin.len(), rel.len());
        for tid in rel.tids() {
            prop_assert_eq!(
                twin.field(tid, 0).unwrap().to_owned_value(),
                rel.field(tid, 0).unwrap().to_owned_value()
            );
            prop_assert_eq!(
                twin.field(tid, 1).unwrap().to_owned_value(),
                rel.field(tid, 1).unwrap().to_owned_value()
            );
        }
    }
}

fn attr_type_strategy() -> impl Strategy<Value = AttrType> {
    prop_oneof![
        Just(AttrType::Int),
        Just(AttrType::Str),
        Just(AttrType::Ptr),
        Just(AttrType::PtrList),
    ]
}

fn table_meta_strategy() -> impl Strategy<Value = TableMeta> {
    (
        "[a-zA-Z_][a-zA-Z0-9_]{0,20}",
        prop::collection::vec(("[a-z_]{1,12}", attr_type_strategy()), 1..8),
        1024usize..1_000_000,
        1usize..60,
    )
        .prop_map(|(name, attrs, partition_bytes, heap_percent)| TableMeta {
            name,
            schema: Schema::new(
                attrs
                    .into_iter()
                    .map(|(n, t)| Attribute::new(&n, t))
                    .collect(),
            ),
            config: PartitionConfig {
                partition_bytes,
                heap_percent,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn catalog_roundtrips(
        tables in prop::collection::vec(table_meta_strategy(), 0..6),
        indexes in prop::collection::vec(
            ("[a-z_]{1,16}", 0u32..6, 0u32..8, prop::bool::ANY, 1u32..200),
            0..8,
        ),
    ) {
        let cat = CatalogMeta {
            tables,
            indexes: indexes
                .into_iter()
                .map(|(name, table, attr, is_tree, param)| IndexMeta {
                    name,
                    table,
                    attr,
                    kind: if is_tree { IndexKind::TTree } else { IndexKind::Hash },
                    param,
                })
                .collect(),
        };
        let bytes = encode_catalog(&cat);
        let back = decode_catalog(&bytes).unwrap();
        prop_assert_eq!(back, cat);
    }

    #[test]
    fn corrupted_catalogs_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        // Decoding arbitrary garbage must fail cleanly, never panic.
        let _ = decode_catalog(&bytes);
    }

    #[test]
    fn truncated_catalogs_never_panic(tables in prop::collection::vec(table_meta_strategy(), 1..4)) {
        let cat = CatalogMeta { tables, indexes: vec![] };
        let bytes = encode_catalog(&cat);
        for cut in 0..bytes.len() {
            let _ = decode_catalog(&bytes[..cut]);
        }
    }
}
