//! Crash-recovery torture suite: deterministic fault injection against
//! the full `Database` stack.
//!
//! Every test here drives a seeded, scripted workload (inserts, updates,
//! deletes, aborts, log-device flushes, fuzzy checkpoint steps) over a
//! [`FaultyDisk`] that injects I/O errors, torn writes, and power cuts
//! at deterministic points. After the crash the database restarts via
//! `RecoveryManager::restart` (through `CrashedDatabase::recover`) and
//! must be tuple-for-tuple equal to the committed prefix of the
//! workload.
//!
//! Every failure panics with the seed (and crash point) that produced
//! it. To replay a single seed bit-for-bit:
//!
//! ```text
//! MMDB_TORTURE_SEED=<seed> cargo test --test recovery_torture torture_across_seeds -- --nocapture
//! ```
//!
//! `MMDB_TORTURE_SEEDS=<n>` widens or narrows the seed sweep (default
//! 64, the CI configuration).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Checkpointer, Database, DbError, IndexKind, TxnEngine, TxnError};
use mmdb_exec::{ExecConfig, Predicate};
use mmdb_recovery::{
    FaultCounters, FaultPlan, FaultyDisk, MemDisk, PartitionKey, RecoveryManager, SplitMix64,
    StableStore,
};
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema, TupleId};
use std::collections::BTreeMap;

/// Aborted transactions insert keys at or above this offset, so any key
/// in this range surviving restart is leaked uncommitted work.
const ABORT_BASE: i64 = 1_000_000;

/// Database-level operations per scripted run.
const SCRIPT_LEN: u64 = 28;

/// Salt separating the workload RNG stream from the fault schedule
/// (both derive from the same printed seed).
const SCRIPT_SALT: u64 = 0x5c7e_a11e_d00d_f00d;

/// Salt for deriving the crash point in the seed-sweep test.
const CRASH_SALT: u64 = 0x0dd0_c0ff_ee15_bad0;

struct RunStats {
    counters: FaultCounters,
    /// Injected errors the workload survived without crashing.
    transient_errors: u64,
    committed_rows: usize,
}

/// Run one scripted workload under `plan`, crash (at the injected power
/// cut, or at end of script), heal the hardware, restart, and check the
/// recovered database against the committed model.
///
/// Error strings are prefixed so callers can distinguish outcomes:
/// * `SETUP:` — the harness itself failed (always a test bug);
/// * `RESTART:` — recovery refused to come up (expected when a torn
///   image is the freshest surviving copy);
/// * `EQUIVALENCE:` — recovery *silently* diverged from the committed
///   prefix (never acceptable).
fn run_torture(seed: u64, plan: FaultPlan) -> Result<RunStats, String> {
    let (disk, handle) = FaultyDisk::new(MemDisk::new(), plan);
    let mut db = Database::with_disk(disk);
    // DDL runs on reliable hardware (the fault plan is not yet armed):
    // the torture target is the logging/checkpoint/restart path, not
    // catalog bootstrap.
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .map_err(|e| format!("SETUP: seed {seed}: create_table: {e}"))?;
    db.create_index("t_k", "t", "k", IndexKind::TTree)
        .map_err(|e| format!("SETUP: seed {seed}: create_index: {e}"))?;
    handle.arm();

    let mut rng = SplitMix64::new(seed.wrapping_add(SCRIPT_SALT));
    // Committed truth: key -> (tid, value).
    let mut model: BTreeMap<i64, (TupleId, i64)> = BTreeMap::new();
    let mut next_key: i64 = 0;
    let mut transient_errors = 0u64;
    let mut ckpt: Option<Checkpointer> = None;

    // Resolve an I/O error from a disk-touching op: a power cut ends the
    // workload (true = crash now); anything else is a transient fault
    // the workload rides through.
    macro_rules! crashed_on {
        ($res:expr) => {
            match $res {
                Ok(_) => false,
                Err(_) if !handle.is_powered() => true,
                Err(_) => {
                    transient_errors += 1;
                    false
                }
            }
        };
    }

    'script: for _ in 0..SCRIPT_LEN {
        match rng.next_u64() % 100 {
            // Commit a batch of fresh inserts. Commits touch only the
            // (volatile-resident) stable log buffer — never the faulty
            // disk — so they cannot fail.
            0..=24 => {
                let n = 1 + rng.next_u64() % 4;
                let mut txn = db.begin();
                let mut fresh = Vec::new();
                for _ in 0..n {
                    let k = next_key;
                    next_key += 1;
                    db.insert(
                        &mut txn,
                        "t",
                        vec![OwnedValue::Int(k), OwnedValue::Int(k * 10)],
                    )
                    .map_err(|e| format!("SETUP: seed {seed}: insert: {e}"))?;
                    fresh.push(k);
                }
                let tids = db
                    .commit(txn)
                    .map_err(|e| format!("SETUP: seed {seed}: commit: {e}"))?;
                for (k, tid) in fresh.into_iter().zip(tids) {
                    model.insert(k, (tid, k * 10));
                }
            }
            // Commit an update of one existing row.
            25..=39 => {
                if model.is_empty() {
                    continue;
                }
                let pick = (rng.next_u64() as usize) % model.len();
                let (&k, &(tid, _)) = model.iter().nth(pick).unwrap();
                let v = (rng.next_u64() % 100_000) as i64;
                let mut txn = db.begin();
                db.update(&mut txn, "t", tid, "v", OwnedValue::Int(v))
                    .map_err(|e| format!("SETUP: seed {seed}: update: {e}"))?;
                db.commit(txn)
                    .map_err(|e| format!("SETUP: seed {seed}: commit update: {e}"))?;
                model.insert(k, (tid, v));
            }
            // Commit a delete of one existing row.
            40..=47 => {
                if model.is_empty() {
                    continue;
                }
                let pick = (rng.next_u64() as usize) % model.len();
                let (&k, &(tid, _)) = model.iter().nth(pick).unwrap();
                let mut txn = db.begin();
                db.delete(&mut txn, "t", tid)
                    .map_err(|e| format!("SETUP: seed {seed}: delete: {e}"))?;
                db.commit(txn)
                    .map_err(|e| format!("SETUP: seed {seed}: commit delete: {e}"))?;
                model.remove(&k);
            }
            // Stage a mess (inserts, maybe an update of live data) and
            // abort it — §2.4: the log entries are removed, no undo.
            48..=60 => {
                let mut txn = db.begin();
                let n = 1 + rng.next_u64() % 3;
                for _ in 0..n {
                    let k = ABORT_BASE + (rng.next_u64() % 10_000) as i64;
                    db.insert(&mut txn, "t", vec![OwnedValue::Int(k), OwnedValue::Int(-1)])
                        .map_err(|e| format!("SETUP: seed {seed}: abort-insert: {e}"))?;
                }
                if !model.is_empty() {
                    let pick = (rng.next_u64() as usize) % model.len();
                    let (_, &(tid, _)) = model.iter().nth(pick).unwrap();
                    db.update(&mut txn, "t", tid, "v", OwnedValue::Int(-7))
                        .map_err(|e| format!("SETUP: seed {seed}: abort-update: {e}"))?;
                }
                db.abort(txn);
            }
            // Full log-device cycle: pull committed records, flush
            // partition images to the (faulty) disk copy.
            61..=76 => {
                if crashed_on!(db.run_log_device()) {
                    break 'script;
                }
            }
            // One fuzzy checkpoint step, interleaved with everything
            // else. A transient failure leaves the partition on the
            // work list; the next step retries it.
            77..=90 => {
                if ckpt.is_none() {
                    ckpt = Some(db.checkpoint_begin());
                }
                let c = ckpt.as_mut().unwrap();
                match c.step(&mut db) {
                    Ok(None) => ckpt = None,
                    Ok(Some(_)) => {}
                    Err(_) if !handle.is_powered() => break 'script,
                    Err(_) => transient_errors += 1,
                }
            }
            // Sharp checkpoint: catalog + every dirty partition at once.
            _ => {
                if crashed_on!(db.checkpoint()) {
                    break 'script;
                }
            }
        }
    }

    // Crash — either we hit the injected power cut above or we pull the
    // plug at end of script. Volatile state vanishes; buffer, device,
    // and disk survive. `heal` models replacing the bad hardware before
    // restart (the surviving bytes, torn or not, are kept as-is).
    let committed_rows = model.len();
    let crashed = db.crash();
    // Snapshot before heal(): heal clears the power_cut flag.
    let counters = handle.counters();
    handle.heal();
    // Restart through the parallel replay path with a seed-derived dop,
    // so the sweep exercises serial (dop 1) and fanned-out restarts
    // alike — recovery must be bit-identical either way.
    let dop = 1 + (seed % 4) as usize;
    let (db2, _report) = crashed
        .recover_with(&[("t", 0)], ExecConfig::with_dop(dop))
        .map_err(|e| format!("RESTART: seed {seed}: {e}"))?;
    verify_equivalence(seed, &db2, &model)?;
    Ok(RunStats {
        counters,
        transient_errors,
        committed_rows,
    })
}

/// Assert the recovered database is tuple-for-tuple the committed model.
fn verify_equivalence<S: StableStore>(
    seed: u64,
    db: &Database<S>,
    model: &BTreeMap<i64, (TupleId, i64)>,
) -> Result<(), String> {
    let n = db
        .len("t")
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: len: {e}"))?;
    if n != model.len() {
        return Err(format!(
            "EQUIVALENCE: seed {seed}: recovered {n} rows, committed prefix has {}",
            model.len()
        ));
    }
    db.validate_indexes()
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: index validation after redo: {e}"))?;
    for (k, (_tid, v)) in model {
        let hits = db
            .select("t", "k", &Predicate::Eq(KeyValue::Int(*k)))
            .map_err(|e| format!("EQUIVALENCE: seed {seed}: select k={k}: {e}"))?;
        if hits.len() != 1 {
            return Err(format!(
                "EQUIVALENCE: seed {seed}: key {k} matched {} rows, want 1",
                hits.len()
            ));
        }
        let row = db
            .fetch("t", &hits.column(0), &["v"])
            .map_err(|e| format!("EQUIVALENCE: seed {seed}: fetch k={k}: {e}"))?;
        if row[0][0] != OwnedValue::Int(*v) {
            return Err(format!(
                "EQUIVALENCE: seed {seed}: key {k} recovered {:?}, committed value {v}",
                row[0][0]
            ));
        }
    }
    let ghosts = db
        .select("t", "k", &Predicate::greater(KeyValue::Int(ABORT_BASE - 1)))
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: ghost scan: {e}"))?;
    if !ghosts.is_empty() {
        return Err(format!(
            "EQUIVALENCE: seed {seed}: {} aborted tuples leaked into recovery",
            ghosts.len()
        ));
    }
    #[cfg(feature = "check")]
    db.deep_check()
        .into_result()
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: deep check after redo:\n{e}"))?;
    Ok(())
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// The CI sweep: N seeds (default 64), each with a seed-derived power
/// cut and a 5% per-op error rate. Any failure names its seed.
#[test]
fn torture_across_seeds() {
    let n = env_u64("MMDB_TORTURE_SEEDS").unwrap_or(64);
    let seeds: Vec<u64> = match env_u64("MMDB_TORTURE_SEED") {
        Some(one) => vec![one],
        None => (0..n).collect(),
    };
    let mut crashed_runs = 0u64;
    for &seed in &seeds {
        let crash_at = SplitMix64::new(seed.wrapping_add(CRASH_SALT)).next_u64() % 24;
        let plan = FaultPlan::seeded(seed, 50).with_crash_at(crash_at);
        match run_torture(seed, plan) {
            Ok(stats) => {
                if stats.counters.power_cut {
                    crashed_runs += 1;
                }
            }
            Err(msg) => panic!(
                "recovery torture failed under seed {seed} (power cut at write #{crash_at}): \
                 {msg}\n  replay: MMDB_TORTURE_SEED={seed} cargo test --test recovery_torture \
                 torture_across_seeds -- --nocapture"
            ),
        }
    }
    // The sweep must actually exercise mid-flight power cuts, not just
    // end-of-script crashes.
    if seeds.len() >= 16 {
        assert!(
            crashed_runs >= seeds.len() as u64 / 4,
            "only {crashed_runs}/{} runs reached their injected power cut — \
             fault schedule is not biting",
            seeds.len()
        );
    }
}

/// Exhaustive crash-point sweep: for a handful of base seeds, first run
/// the script fault-free to learn how many disk writes it performs,
/// then crash at *every* write index in turn.
#[test]
fn torture_crashes_at_every_write_point() {
    for seed in [1u64, 7, 23] {
        let clean = run_torture(seed, FaultPlan::none())
            .unwrap_or_else(|m| panic!("fault-free run must pass (seed {seed}): {m}"));
        let writes = clean.counters.writes;
        assert!(
            writes > 0,
            "seed {seed}: script performed no disk writes — sweep is vacuous"
        );
        assert_eq!(clean.transient_errors, 0);
        for crash_at in 0..writes {
            let plan = FaultPlan::seeded(seed, 0).with_crash_at(crash_at);
            if let Err(msg) = run_torture(seed, plan) {
                panic!("crash at write #{crash_at}/{writes} not recovered (seed {seed}): {msg}");
            }
        }
    }
}

/// A silent tear (the disk acks a prefix-only write) at every write
/// index must end in one of two acceptable states: full equivalence
/// (the tear was masked by a fresher surviving copy) or an explicit
/// `RESTART` corruption diagnostic. Silent divergence is the one
/// forbidden outcome.
#[test]
fn silent_tears_never_silently_diverge() {
    let mut detected = 0u64;
    let mut masked = 0u64;
    for seed in [3u64, 11] {
        let clean = run_torture(seed, FaultPlan::none())
            .unwrap_or_else(|m| panic!("fault-free run must pass (seed {seed}): {m}"));
        for tear_at in 0..clean.counters.writes {
            let plan = FaultPlan::seeded(seed, 0).with_silent_tear_at(tear_at);
            match run_torture(seed, plan) {
                Ok(_) => masked += 1,
                Err(msg) if msg.starts_with("RESTART:") => {
                    assert!(
                        msg.contains("corrupt") || msg.contains("catalog"),
                        "seed {seed}, tear at write #{tear_at}: restart failed but not \
                         with a corruption diagnostic: {msg}"
                    );
                    detected += 1;
                }
                Err(msg) => panic!(
                    "seed {seed}, tear at write #{tear_at}: torn write caused silent \
                     divergence instead of detection: {msg}"
                ),
            }
        }
    }
    // Masking must actually occur in the sweep; the *detected* outcome
    // is pinned down deterministically by
    // `torn_partition_image_is_detected_with_diagnostics` below, since
    // whether a given tear is masked depends on whether later commits
    // re-log the partition.
    assert!(masked > 0, "no tear was ever masked by fresher log layers");
    let _ = detected;
}

/// Deterministic negative test: tear the very first partition-image
/// flush, leave the torn image as the only copy, and demand a precise
/// `CorruptPartition` diagnostic at restart — not a silent redo.
#[test]
fn torn_partition_image_is_detected_with_diagnostics() {
    let plan = FaultPlan::seeded(99, 0).with_silent_tear_at(0);
    let (disk, handle) = FaultyDisk::new(MemDisk::new(), plan);
    let mut db = Database::with_disk(disk);
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    handle.arm();
    let mut txn = db.begin();
    db.insert(&mut txn, "t", vec![OwnedValue::Int(1), OwnedValue::Int(10)])
        .unwrap();
    db.commit(txn).unwrap();
    // Flush "succeeds" but the disk kept only a prefix; the device and
    // buffer drop their (fresher) copies on the crash that follows, so
    // the torn image is all restart has.
    db.run_log_device().unwrap();
    assert_eq!(handle.counters().torn_writes, 1);
    let crashed = db.crash();
    handle.heal();
    let err = crashed
        .recover(&[("t", 0)])
        .err()
        .expect("restart must refuse a torn partition image");
    match &err {
        DbError::CorruptPartition {
            table,
            partition,
            source,
        } => {
            assert_eq!(table, "t");
            assert_eq!(*partition, 0);
            assert!(
                source.to_string().contains("truncated"),
                "diagnostic should say what the decoder rejected: {source}"
            );
        }
        other => panic!("want CorruptPartition, got: {other}"),
    }
    let msg = err.to_string();
    assert!(
        msg.contains("t.p0") && msg.contains("refusing to redo"),
        "diagnostic must name the image and the refusal: {msg}"
    );
}

/// Same discipline for the catalog: if *every* shadow slot is torn,
/// restart must fail with a catalog decode diagnostic, never read
/// garbage. (DDL runs armed here: write #0 persists epoch 1 to one
/// slot, write #1 persists epoch 2 to the other — tear both.)
#[test]
fn torn_catalog_is_detected_at_restart() {
    let plan = FaultPlan::seeded(7, 0)
        .with_silent_tear_at(0)
        .with_silent_tear_at(1);
    let (disk, handle) = FaultyDisk::new(MemDisk::new(), plan);
    let mut db = Database::with_disk(disk);
    handle.arm();
    db.create_table("t", Schema::of(&[("k", AttrType::Int)]))
        .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    assert_eq!(handle.counters().torn_writes, 2);
    let crashed = db.crash();
    handle.heal();
    match crashed.recover(&[("t", 0)]) {
        Err(DbError::Catalog(m)) => {
            assert!(
                m.contains("truncated") || m.contains("magic"),
                "catalog diagnostic should name the decode failure: {m}"
            );
        }
        Err(other) => panic!("want Catalog error, got: {other}"),
        Ok(_) => panic!("restart decoded a torn catalog without complaint"),
    }
}

/// The shadow-slot scheme at work: tearing one catalog persist (the
/// checkpoint's re-persist) must be masked by the other slot's intact
/// previous epoch — this exact scenario was unrecoverable before
/// catalog writes were double-buffered.
#[test]
fn torn_catalog_slot_is_masked_by_shadow_slot() {
    let plan = FaultPlan::seeded(7, 0).with_silent_tear_at(0);
    let (disk, handle) = FaultyDisk::new(MemDisk::new(), plan);
    let mut db = Database::with_disk(disk);
    db.create_table("t", Schema::of(&[("k", AttrType::Int)]))
        .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    let mut txn = db.begin();
    db.insert(&mut txn, "t", vec![OwnedValue::Int(1)]).unwrap();
    db.commit(txn).unwrap();
    handle.arm();
    // Checkpoint: catalog re-persist (write #0) is silently torn, the
    // partition image write that follows succeeds.
    db.checkpoint().unwrap();
    assert_eq!(handle.counters().torn_writes, 1);
    let crashed = db.crash();
    handle.heal();
    let (db2, _) = crashed
        .recover(&[("t", 0)])
        .expect("shadow slot must mask a single torn catalog write");
    assert_eq!(db2.len("t").unwrap(), 1);
    let hits = db2
        .select("t", "k", &Predicate::Eq(KeyValue::Int(1)))
        .unwrap();
    assert_eq!(hits.len(), 1);
}

/// Replaying the same seed must reproduce the run bit-for-bit: same op
/// counts, same injected faults, same fault schedule digest, same
/// committed row count.
#[test]
fn same_seed_replays_bit_for_bit() {
    let mk_plan = || FaultPlan::seeded(42, 120).with_crash_at(5);
    let a = run_torture(42, mk_plan()).expect("seed 42 must recover");
    let b = run_torture(42, mk_plan()).expect("seed 42 must recover on replay");
    assert_eq!(
        a.counters, b.counters,
        "fault schedule (including digest) must be identical across replays"
    );
    assert_eq!(a.transient_errors, b.transient_errors);
    assert_eq!(a.committed_rows, b.committed_rows);
}

// ---------------------------------------------------------------------
// Buggy-recovery-manager negative test: the torture harness must catch
// a manager that redoes uncommitted records, mirroring the explorer's
// buggy-lock-manager pattern in `mmdb-check`.
// ---------------------------------------------------------------------

/// The redo-recovery surface the manager-level harness scripts against.
trait RedoRecovery {
    fn log(&mut self, txn: u64, key: PartitionKey, image: Vec<u8>);
    fn commit(&mut self, txn: u64);
    fn abort(&mut self, txn: u64);
    fn flush(&mut self);
    fn crash(&mut self);
    fn recovered_images(&self) -> BTreeMap<PartitionKey, Vec<u8>>;
}

impl RedoRecovery for RecoveryManager<MemDisk> {
    fn log(&mut self, txn: u64, key: PartitionKey, image: Vec<u8>) {
        self.log_update(txn, key, image);
    }
    fn commit(&mut self, txn: u64) {
        RecoveryManager::commit(self, txn);
    }
    fn abort(&mut self, txn: u64) {
        RecoveryManager::abort(self, txn);
    }
    fn flush(&mut self) {
        self.run_log_device().expect("MemDisk flush cannot fail");
    }
    fn crash(&mut self) {
        self.crash_volatile();
    }
    fn recovered_images(&self) -> BTreeMap<PartitionKey, Vec<u8>> {
        self.restart(&[])
            .expect("MemDisk restart cannot fail")
            .into_iter()
            .map(|(k, img, _phase)| (k, img))
            .collect()
    }
}

/// A deliberately broken manager: at crash time it "helpfully" commits
/// every still-staged transaction before losing volatile state —
/// exactly the bug redo-only logging exists to rule out (§2.4 removes
/// aborted/uncommitted entries instead of redoing them).
struct BuggyManager {
    inner: RecoveryManager<MemDisk>,
    in_flight: Vec<u64>,
}

impl BuggyManager {
    fn new() -> Self {
        BuggyManager {
            inner: RecoveryManager::new(MemDisk::new()),
            in_flight: Vec::new(),
        }
    }
}

impl RedoRecovery for BuggyManager {
    fn log(&mut self, txn: u64, key: PartitionKey, image: Vec<u8>) {
        if !self.in_flight.contains(&txn) {
            self.in_flight.push(txn);
        }
        self.inner.log_update(txn, key, image);
    }
    fn commit(&mut self, txn: u64) {
        self.in_flight.retain(|&t| t != txn);
        self.inner.commit(txn);
    }
    fn abort(&mut self, txn: u64) {
        self.in_flight.retain(|&t| t != txn);
        self.inner.abort(txn);
    }
    fn flush(&mut self) {
        self.inner
            .run_log_device()
            .expect("MemDisk flush cannot fail");
    }
    fn crash(&mut self) {
        // THE BUG: staged (uncommitted) records get redone.
        for txn in std::mem::take(&mut self.in_flight) {
            self.inner.commit(txn);
        }
        self.inner.crash_volatile();
    }
    fn recovered_images(&self) -> BTreeMap<PartitionKey, Vec<u8>> {
        self.inner.recovered_images()
    }
}

/// Scripted manager-level torture: returns `Err(message-with-seed)` if
/// the recovered images diverge from the committed model.
fn run_manager_script<R: RedoRecovery>(seed: u64, mgr: &mut R) -> Result<(), String> {
    let mut rng = SplitMix64::new(seed.wrapping_add(SCRIPT_SALT));
    // Model of committed truth: key -> (lsn, image); freshest LSN wins,
    // exactly the `recover_image` layering rule.
    let mut lsn = 0u64;
    let mut staged: BTreeMap<u64, Vec<(PartitionKey, u64, Vec<u8>)>> = BTreeMap::new();
    let mut committed: BTreeMap<PartitionKey, (u64, Vec<u8>)> = BTreeMap::new();
    // Partition write locks: the manager's contract assumes the strict
    // 2PL the lock manager enforces above it — a partition staged by one
    // in-flight transaction is not written by another until that
    // transaction commits or aborts (so per-partition log order equals
    // commit order).
    let mut owner: BTreeMap<PartitionKey, u64> = BTreeMap::new();
    for step in 0..40u64 {
        match rng.next_u64() % 10 {
            0..=4 => {
                let txn = rng.next_u64() % 3;
                let start = rng.next_u64() % 4;
                let free = (0..4u64).map(|i| ((start + i) % 4) as u32).find(|p| {
                    owner
                        .get(&PartitionKey::new(0, *p))
                        .is_none_or(|&holder| holder == txn)
                });
                let Some(p) = free else {
                    continue; // every partition locked by someone else
                };
                let key = PartitionKey::new(0, p);
                owner.insert(key, txn);
                // Unique payload per log record so any resurrected
                // uncommitted record is distinguishable.
                let image = vec![seed as u8, step as u8, txn as u8, 0xA5];
                staged
                    .entry(txn)
                    .or_default()
                    .push((key, lsn, image.clone()));
                lsn += 1;
                mgr.log(txn, key, image);
            }
            5..=6 => {
                let txn = rng.next_u64() % 3;
                for (key, l, img) in staged.remove(&txn).unwrap_or_default() {
                    match committed.get(&key) {
                        Some(&(have, _)) if have > l => {}
                        _ => {
                            committed.insert(key, (l, img));
                        }
                    }
                }
                owner.retain(|_, holder| *holder != txn);
                mgr.commit(txn);
            }
            7 => {
                let txn = rng.next_u64() % 3;
                staged.remove(&txn);
                owner.retain(|_, holder| *holder != txn);
                mgr.abort(txn);
            }
            _ => mgr.flush(),
        }
    }
    mgr.crash();
    let recovered = mgr.recovered_images();
    let want: BTreeMap<PartitionKey, Vec<u8>> = committed
        .into_iter()
        .map(|(k, (_l, img))| (k, img))
        .collect();
    if recovered != want {
        return Err(format!(
            "seed {seed}: recovered images diverge from committed model\n  recovered: \
             {recovered:?}\n  committed: {want:?}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Concurrent-commit torture: group commits from several sessions racing
// the same FaultyDisk power cut. Durability lives in the stable log
// buffer (§2.4), so every commit that returned `Ok` before the plug is
// pulled — and nothing else — must survive restart.
// ---------------------------------------------------------------------

/// Committer sessions racing each other and the fault schedule.
const CONCURRENT_THREADS: usize = 3;

/// Transactions each committer session runs.
const TXNS_PER_SESSION: usize = 4;

/// Salt separating the concurrent committers' RNG streams from the
/// scripted single-threaded workload above.
const CONCURRENT_SALT: u64 = 0x9d2c_5680_ca11_ab1e;

/// Run `CONCURRENT_THREADS` sessions against one [`TxnEngine`] over a
/// faulty disk, each committing (or aborting) seeded insert batches and
/// occasionally racing a log-device cycle or checkpoint into the mix.
/// Then crash, heal, restart, and check the recovered table holds
/// exactly the rows whose commits returned `Ok`.
fn run_concurrent_torture(seed: u64, plan: FaultPlan) -> Result<FaultCounters, String> {
    let (disk, handle) = FaultyDisk::new(MemDisk::new(), plan);
    let mut db = Database::with_disk(disk);
    db.create_table(
        "ct",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .map_err(|e| format!("SETUP: seed {seed}: create_table: {e}"))?;
    db.create_index("ct_k", "ct", "k", IndexKind::TTree)
        .map_err(|e| format!("SETUP: seed {seed}: create_index: {e}"))?;
    handle.arm();

    let engine = TxnEngine::new(db);
    let (sink, results) = std::sync::mpsc::channel::<(i64, i64)>();
    let mut workers = Vec::new();
    for t in 0..CONCURRENT_THREADS {
        let e = engine.clone();
        let sink = sink.clone();
        workers.push(std::thread::spawn(move || -> Result<(), String> {
            let session = e.session();
            let mut rng = SplitMix64::new(
                seed.wrapping_add(CONCURRENT_SALT)
                    .wrapping_mul(2 * t as u64 + 1),
            );
            for i in 0..TXNS_PER_SESSION {
                // Key space is partitioned per (thread, txn) so commits
                // never collide on a key and the committed set is
                // unambiguous regardless of interleaving.
                let base = ((t * TXNS_PER_SESSION + i) * 8) as i64;
                let n = 1 + rng.next_u64() % 3;
                let doomed = rng.next_u64().is_multiple_of(4);
                let mut txn = session.begin();
                let mut staged = Vec::new();
                for j in 0..n {
                    let k = if doomed {
                        ABORT_BASE + base + j as i64
                    } else {
                        base + j as i64
                    };
                    let v = (rng.next_u64() % 100_000) as i64;
                    session
                        .insert(&mut txn, "ct", vec![OwnedValue::Int(k), OwnedValue::Int(v)])
                        .map_err(|e| format!("SETUP: seed {seed}: thread {t}: insert: {e}"))?;
                    staged.push((k, v));
                }
                if doomed {
                    session.abort(txn);
                } else {
                    match session.commit(txn) {
                        Ok(_) => {
                            for kv in staged {
                                let _ = sink.send(kv);
                            }
                        }
                        // A victim commits nothing and leaves no trace.
                        Err(TxnError::Deadlock) => {}
                        Err(e) => {
                            return Err(format!("SETUP: seed {seed}: thread {t}: commit: {e}"))
                        }
                    }
                }
                // Race device cycles and checkpoints into the commit
                // stream. Both touch the faulty disk; any error (the
                // power cut included) is survivable because durability
                // is the marker in the stable log buffer, not the disk.
                if rng.next_u64().is_multiple_of(3) {
                    e.with_db(|db| {
                        let _ = db.run_log_device();
                    });
                }
                if rng.next_u64().is_multiple_of(4) {
                    e.with_db(|db| {
                        let _ = db.checkpoint();
                    });
                }
            }
            Ok(())
        }));
    }
    drop(sink);
    for w in workers {
        w.join()
            .map_err(|_| format!("SETUP: seed {seed}: committer thread panicked"))??;
    }
    let committed: BTreeMap<i64, i64> = results.iter().collect();

    let db = engine
        .into_inner()
        .ok_or_else(|| format!("SETUP: seed {seed}: engine still shared after join"))?;
    let counters = handle.counters();
    let crashed = db.crash();
    handle.heal();
    // Seed-derived dop, as in the scripted sweep: half the seeds restart
    // through the parallel replay path.
    let dop = 1 + (seed % 4) as usize;
    let (db2, _report) = crashed
        .recover_with(&[("ct", 0)], ExecConfig::with_dop(dop))
        .map_err(|e| format!("RESTART: seed {seed}: {e}"))?;

    let rows = db2
        .len("ct")
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: len: {e}"))?;
    if rows != committed.len() {
        return Err(format!(
            "EQUIVALENCE: seed {seed}: recovered {rows} rows, {} commits returned Ok",
            committed.len()
        ));
    }
    db2.validate_indexes()
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: index validation after redo: {e}"))?;
    for (k, v) in &committed {
        let hits = db2
            .select("ct", "k", &Predicate::Eq(KeyValue::Int(*k)))
            .map_err(|e| format!("EQUIVALENCE: seed {seed}: select k={k}: {e}"))?;
        if hits.len() != 1 {
            return Err(format!(
                "EQUIVALENCE: seed {seed}: committed key {k} matched {} rows, want 1",
                hits.len()
            ));
        }
        let row = db2
            .fetch("ct", &hits.column(0), &["v"])
            .map_err(|e| format!("EQUIVALENCE: seed {seed}: fetch k={k}: {e}"))?;
        if row[0][0] != OwnedValue::Int(*v) {
            return Err(format!(
                "EQUIVALENCE: seed {seed}: key {k} recovered {:?}, committed value {v}",
                row[0][0]
            ));
        }
    }
    let ghosts = db2
        .select(
            "ct",
            "k",
            &Predicate::greater(KeyValue::Int(ABORT_BASE - 1)),
        )
        .map_err(|e| format!("EQUIVALENCE: seed {seed}: ghost scan: {e}"))?;
    if !ghosts.is_empty() {
        return Err(format!(
            "EQUIVALENCE: seed {seed}: {} aborted tuples leaked into recovery",
            ghosts.len()
        ));
    }
    Ok(counters)
}

/// The concurrent sweep: N seeds (default 64, shared with the scripted
/// sweep's env knobs), each with a seed-derived power cut racing the
/// group-commit stream from three sessions.
#[test]
fn concurrent_commit_torture_across_seeds() {
    let n = env_u64("MMDB_TORTURE_SEEDS").unwrap_or(64);
    let seeds: Vec<u64> = match env_u64("MMDB_TORTURE_SEED") {
        Some(one) => vec![one],
        None => (0..n).collect(),
    };
    let mut cut_runs = 0u64;
    for &seed in &seeds {
        let crash_at = SplitMix64::new(seed.wrapping_add(CRASH_SALT)).next_u64() % 32;
        let plan = FaultPlan::seeded(seed, 50).with_crash_at(crash_at);
        match run_concurrent_torture(seed, plan) {
            Ok(counters) => {
                if counters.power_cut {
                    cut_runs += 1;
                }
            }
            Err(msg) => panic!(
                "concurrent commit torture failed under seed {seed} (power cut at write \
                 #{crash_at}): {msg}\n  replay: MMDB_TORTURE_SEED={seed} cargo test --test \
                 recovery_torture concurrent_commit_torture_across_seeds -- --nocapture"
            ),
        }
    }
    // The sweep must actually race commits against mid-flight power
    // cuts, not just run fault-free.
    if seeds.len() >= 16 {
        assert!(
            cut_runs >= seeds.len() as u64 / 4,
            "only {cut_runs}/{} runs reached their injected power cut — fault schedule \
             is not biting",
            seeds.len()
        );
    }
}

#[test]
fn buggy_recovery_manager_is_caught_and_replayable() {
    // The real manager survives the whole sweep.
    for seed in 0..64u64 {
        let mut mgr = RecoveryManager::new(MemDisk::new());
        run_manager_script(seed, &mut mgr)
            .unwrap_or_else(|m| panic!("correct manager failed torture: {m}"));
    }
    // The buggy one is caught, the failure names its seed, and the seed
    // replays to the identical failure.
    let caught: Vec<(u64, String)> = (0..64u64)
        .filter_map(|seed| {
            let mut mgr = BuggyManager::new();
            run_manager_script(seed, &mut mgr).err().map(|m| (seed, m))
        })
        .collect();
    assert!(
        !caught.is_empty(),
        "a manager that redoes uncommitted records slipped through 64 seeds"
    );
    let (seed, first_msg) = &caught[0];
    assert!(
        first_msg.contains(&format!("seed {seed}")),
        "failure message must carry the seed for replay: {first_msg}"
    );
    let mut replay = BuggyManager::new();
    let replay_msg = run_manager_script(*seed, &mut replay)
        .expect_err("replaying the failing seed must fail again");
    assert_eq!(
        &replay_msg, first_msg,
        "same seed must reproduce the identical failure bit-for-bit"
    );
}
