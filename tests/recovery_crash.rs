//! Failure-injection tests for the recovery protocol: arbitrary
//! interleavings of commits, aborts, log-device progress, and crash
//! points must always recover exactly the committed state.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::Predicate;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One scripted step of database activity.
#[derive(Debug, Clone)]
enum Step {
    /// Commit a transaction inserting these keys (values `key * 10`).
    CommitInsert(Vec<i64>),
    /// Abort a transaction that staged these keys.
    AbortInsert(Vec<i64>),
    /// Commit an update of one existing key's value to `new`.
    CommitUpdate { key_index: usize, new: i64 },
    /// Let the log device pull (but not flush).
    DevicePoll,
    /// Full log-device cycle (pull + flush to disk copy).
    DeviceFlush,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => prop::collection::vec(0i64..2000, 1..6).prop_map(Step::CommitInsert),
        2 => prop::collection::vec(0i64..2000, 1..6).prop_map(Step::AbortInsert),
        3 => (0usize..64, 0i64..100_000).prop_map(|(key_index, new)| Step::CommitUpdate { key_index, new }),
        1 => Just(Step::DevicePoll),
        1 => Just(Step::DeviceFlush),
    ]
}

fn fresh_db() -> Database {
    let mut db = Database::in_memory();
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
    )
    .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recovery_equals_committed_model(steps in prop::collection::vec(step_strategy(), 1..25)) {
        let mut db = fresh_db();
        // Committed truth: key -> (tid, value). Keys inserted once.
        let mut model: BTreeMap<i64, (mmdb_storage::TupleId, i64)> = BTreeMap::new();
        for step in &steps {
            match step {
                Step::CommitInsert(keys) => {
                    let mut txn = db.begin();
                    let mut fresh = Vec::new();
                    for k in keys {
                        if !model.contains_key(k) && !fresh.contains(k) {
                            db.insert(&mut txn, "t",
                                vec![OwnedValue::Int(*k), OwnedValue::Int(k * 10)]).unwrap();
                            fresh.push(*k);
                        }
                    }
                    let tids = db.commit(txn).unwrap();
                    for (k, tid) in fresh.into_iter().zip(tids) {
                        model.insert(k, (tid, k * 10));
                    }
                }
                Step::AbortInsert(keys) => {
                    let mut txn = db.begin();
                    for k in keys {
                        // Key collisions with the model are fine: aborted
                        // work never happened.
                        db.insert(&mut txn, "t",
                            vec![OwnedValue::Int(*k + 1_000_000), OwnedValue::Int(-1)]).unwrap();
                    }
                    db.abort(txn);
                }
                Step::CommitUpdate { key_index, new } => {
                    if model.is_empty() { continue; }
                    let k = *model.keys().nth(key_index % model.len()).unwrap();
                    let (tid, _) = model[&k];
                    let mut txn = db.begin();
                    db.update(&mut txn, "t", tid, "v", OwnedValue::Int(*new)).unwrap();
                    db.commit(txn).unwrap();
                    model.insert(k, (tid, *new));
                }
                Step::DevicePoll => { /* modeled inside run_log_device only */ }
                Step::DeviceFlush => db.run_log_device().unwrap(),
            }
        }
        // Crash at an arbitrary point in device progress, then recover.
        let crashed = db.crash();
        let (db2, _report) = crashed.recover(&[("t", 0)]).unwrap();
        prop_assert_eq!(db2.len("t").unwrap(), model.len());
        db2.validate_indexes().map_err(TestCaseError::fail)?;
        for (k, (_tid, v)) in &model {
            let hits = db2.select("t", "k", &Predicate::Eq(KeyValue::Int(*k))).unwrap();
            prop_assert_eq!(hits.len(), 1, "key {} missing", k);
            let row = db2.fetch("t", &hits.column(0), &["v"]).unwrap();
            prop_assert_eq!(&row[0][0], &OwnedValue::Int(*v), "key {} value", k);
        }
        // Nothing beyond the model survived (aborted inserts used keys
        // ≥ 1,000,000).
        let ghosts = db2.select("t", "k",
            &Predicate::greater(KeyValue::Int(999_999))).unwrap();
        prop_assert!(ghosts.is_empty(), "aborted inserts leaked");
    }

    #[test]
    fn double_crash_is_idempotent(keys in prop::collection::vec(0i64..500, 1..20)) {
        let mut db = fresh_db();
        let mut txn = db.begin();
        let mut uniq = keys.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for k in &uniq {
            db.insert(&mut txn, "t", vec![OwnedValue::Int(*k), OwnedValue::Int(0)]).unwrap();
        }
        db.commit(txn).unwrap();
        let (db2, _) = db.crash().recover(&[]).unwrap();
        prop_assert_eq!(db2.len("t").unwrap(), uniq.len());
        // Crash again immediately — recovery must be repeatable.
        let (db3, _) = db2.crash().recover(&[("t", 0)]).unwrap();
        prop_assert_eq!(db3.len("t").unwrap(), uniq.len());
        db3.validate_indexes().map_err(TestCaseError::fail)?;
    }
}

#[test]
fn recover_on_empty_database_fails_gracefully_without_catalog() {
    // A crashed DB that never persisted a catalog (no DDL) cannot recover.
    use mmdb_recovery::{MemDisk, RecoveryManager};
    let mgr = RecoveryManager::new(MemDisk::new());
    drop(mgr); // nothing to assert here beyond type plumbing
    let db: Database = Database::in_memory();
    // No create_table calls → catalog was still written? No: only DDL
    // persists it. Crash + recover must fail with a catalog error.
    let crashed = db.crash();
    let err = crashed.recover(&[]).err().expect("no catalog to recover");
    assert!(format!("{err}").contains("catalog"));
}

#[test]
fn working_set_ordering_is_respected() {
    let mut db = Database::in_memory();
    db.create_table(
        "w",
        Schema::of(&[("k", AttrType::Int), ("pad", AttrType::Str)]),
    )
    .unwrap();
    db.create_index("w_k", "w", "k", IndexKind::TTree).unwrap();
    let mut txn = db.begin();
    for k in 0..30_000 {
        db.insert(
            &mut txn,
            "w",
            vec![OwnedValue::Int(k), OwnedValue::Str(format!("pad{k}"))],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    let parts = db.with_relation("w", |r| r.partition_count()).unwrap();
    assert!(parts >= 4);
    let (db2, report) = db.crash().recover(&[("w", 3), ("w", 1)]).unwrap();
    assert_eq!(report.loaded[0].1, 3, "requested working set loads first");
    assert_eq!(report.loaded[1].1, 1);
    use mmdb_recovery::RestartPhase;
    assert_eq!(report.loaded[0].2, RestartPhase::WorkingSet);
    assert!(report.loaded[2..]
        .iter()
        .all(|(_, _, p)| *p == RestartPhase::Background));
    assert_eq!(db2.len("w").unwrap(), 30_000);
}
