//! Property tests for the cost-based planner: over random workloads,
//! the planned execution is tuple-for-tuple identical to every forced
//! join method and to fully serial execution, and the chosen join
//! method never estimates more comparisons than any alternative the
//! planner rejected.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind, QueryOutput};
use mmdb_exec::{JoinMethod, Predicate};
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};
use proptest::prelude::*;

/// Three tables with T-Trees on every join attribute, loaded from the
/// generated value vectors. `r1.jcol` joins `r2.jcol`; `r2.jcol` joins
/// `r3.jcol` (chained).
fn build_db(r1: &[i64], r2: &[i64], r3: &[i64]) -> Database {
    let mut db = Database::in_memory();
    for t in ["r1", "r2", "r3"] {
        db.create_table(
            t,
            Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]),
        )
        .unwrap();
        db.create_index(&format!("{t}_pk"), t, "pk", IndexKind::TTree)
            .unwrap();
        db.create_index(&format!("{t}_jcol"), t, "jcol", IndexKind::TTree)
            .unwrap();
    }
    let mut txn = db.begin();
    for (t, vals) in [("r1", r1), ("r2", r2), ("r3", r3)] {
        for (i, v) in vals.iter().enumerate() {
            db.insert(
                &mut txn,
                t,
                vec![OwnedValue::Int(i as i64), OwnedValue::Int(*v)],
            )
            .unwrap();
        }
    }
    db.commit(txn).unwrap();
    db
}

/// Canonical multiset of output rows for order-insensitive comparison.
fn canonical(out: &QueryOutput) -> Vec<String> {
    let mut rows: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

fn values_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    // Small key space forces duplication and overlap across tables.
    prop::collection::vec(-6i64..6, 1..max_len)
}

/// Methods that stay feasible on any shape this workload produces (no
/// pointer fields; every join attribute T-Tree indexed, inners never
/// filtered — so TreeJoin is feasible too).
const FORCIBLE: [JoinMethod; 4] = [
    JoinMethod::HashJoin,
    JoinMethod::SortMerge,
    JoinMethod::NestedLoops,
    JoinMethod::TreeJoin,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn planned_equals_forced_and_serial(
        v1 in values_strategy(30),
        v2 in values_strategy(30),
        v3 in values_strategy(30),
        lo in -6i64..6,
    ) {
        let db = build_db(&v1, &v2, &v3);
        let query = || {
            db.query("r1")
                .filter("jcol", Predicate::greater(KeyValue::Int(lo)))
                .join("jcol", "r2", "jcol")
                .join_from("r2", "jcol", "r3", "jcol")
                .project(&[("r1", "pk"), ("r2", "pk"), ("r3", "pk")])
        };

        let planned = query().run().unwrap();
        let want = canonical(&planned);

        // Fully serial execution is tuple-for-tuple identical (same
        // order, not just the same multiset).
        let serial = query().parallelism(1).run().unwrap();
        prop_assert_eq!(&serial.rows, &planned.rows);

        // Every forced method yields the same multiset of rows.
        for m in FORCIBLE {
            let forced = query().force_join_method(m).run().unwrap();
            prop_assert_eq!(canonical(&forced), want.clone(), "{:?}", m);
        }

        // Naive as-written placement agrees too.
        let naive = query().pushdown(false).reorder(false).run().unwrap();
        prop_assert_eq!(canonical(&naive), want.clone());

        // The chosen method never estimates more comparisons than any
        // rejected alternative.
        for join in planned.profile.joins() {
            for (m, est) in &join.rejected {
                prop_assert!(
                    join.est_comparisons <= *est,
                    "{:?} (est {}) lost to rejected {:?} (est {}) in {}",
                    join.method,
                    join.est_comparisons,
                    m,
                    est,
                    join.label
                );
            }
        }
    }

    #[test]
    fn dop_never_changes_results(
        v1 in values_strategy(40),
        v2 in values_strategy(40),
    ) {
        let db = build_db(&v1, &v2, &[0]);
        let run = |dop: usize| {
            db.query("r1")
                .join("jcol", "r2", "jcol")
                .project(&[("r1", "pk"), ("r2", "pk")])
                .distinct()
                .parallelism(dop)
                .run()
                .unwrap()
        };
        let serial = run(1);
        for dop in [2, 4, 8] {
            let par = run(dop);
            prop_assert_eq!(&par.rows, &serial.rows, "dop={}", dop);
        }
    }
}
