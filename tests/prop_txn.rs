//! Serializability property suite for the multi-session transaction
//! engine.
//!
//! Seeded multi-threaded schedules of read/write transactions run over
//! small relations through [`TxnEngine`] sessions. For every seed the
//! suite asserts that the committed history is equivalent to *some*
//! serial order: there must exist a permutation of the committed
//! transactions whose serial replay against a model database reproduces
//! both every transaction's recorded read set and the final database
//! state. Deadlock victims (the engine detects cycles and aborts) must
//! leave no trace.
//!
//! Workloads derive from `SplitMix64` — the same generator the
//! interleaving explorer and the torture harness use — so a failure
//! prints its seed and replays bit-for-bit (up to OS thread scheduling,
//! which the oracle quantifies over by accepting *any* serial
//! equivalent):
//!
//! ```text
//! MMDB_TXN_SEED=<seed> cargo test --test prop_txn serializable_across_seeds -- --nocapture
//! ```
//!
//! `MMDB_TXN_SEEDS=<n>` widens or narrows the sweep (default 64, the CI
//! configuration).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind, TxnEngine, TxnError};
use mmdb_exec::Predicate;
use mmdb_recovery::SplitMix64;
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema, TupleId};
use std::collections::BTreeMap;
use std::sync::{mpsc, Barrier};
use std::thread;

const TABLES: [&str; 2] = ["rel_a", "rel_b"];
/// Keys 0..SEED_KEYS exist in every table before the concurrent phase.
const SEED_KEYS: i64 = 4;
/// Concurrent client threads (dop > 1).
const THREADS: usize = 3;
/// Transactions per thread.
const TXNS_PER_THREAD: usize = 2;
/// Operations per transaction.
const OPS_PER_TXN: usize = 3;

/// One logical operation of a generated transaction. Inserts use keys
/// unique across the whole schedule, so every key maps to at most one
/// row and serial replay is exact; updates and deletes are conditioned
/// on presence (their hidden existence-read is deterministic given the
/// model state, so the oracle replays it faithfully).
#[derive(Debug, Clone)]
enum Op {
    /// Read the value of `key` (None when absent).
    Read { table: usize, key: i64 },
    /// Set `key` to `val` if the key exists; no-op otherwise.
    Update { table: usize, key: i64, val: i64 },
    /// Insert a schedule-unique `key` with `val`.
    InsertUnique { table: usize, key: i64, val: i64 },
    /// Delete `key` if present.
    Delete { table: usize, key: i64 },
}

/// The observable record of one committed transaction.
#[derive(Debug)]
struct Committed {
    ops: Vec<Op>,
    /// Recorded result of each `Op::Read`, in op order.
    reads: Vec<Option<i64>>,
}

fn build_engine() -> TxnEngine {
    let engine = TxnEngine::new(Database::in_memory());
    engine.with_db(|db| {
        for t in TABLES {
            db.create_table(t, Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]))
                .unwrap();
            db.create_index(&format!("{t}_k"), t, "k", IndexKind::Hash)
                .unwrap();
        }
        let mut txn = db.begin();
        for t in TABLES {
            for k in 0..SEED_KEYS {
                db.insert(&mut txn, t, vec![OwnedValue::Int(k), OwnedValue::Int(0)])
                    .unwrap();
            }
        }
        db.commit(txn).unwrap();
    });
    engine
}

/// Insert keys start here; `unique_key` never repeats within a schedule.
const INSERT_BASE: i64 = 1000;

/// Generate the ops of one transaction from a seeded stream.
/// `unique_key` is the base for this transaction's schedule-unique
/// insert keys.
fn gen_ops(rng: &mut SplitMix64, unique_key: i64) -> Vec<Op> {
    // Writes are deferred: a transaction's reads never see its own
    // buffered writes, and a second write to a tuple the transaction
    // already buffered a delete for is a (correctly rejected) double
    // delete. Keep generated transactions inside the supported
    // semantics: once a key is deleted in a txn, later ops on it
    // degrade to reads.
    let mut deleted = std::collections::HashSet::new();
    (0..OPS_PER_TXN)
        .map(|op_idx| {
            let table = (rng.next_u64() % TABLES.len() as u64) as usize;
            let key = (rng.next_u64() % (SEED_KEYS as u64 + 1)) as i64;
            match rng.next_u64() % 10 {
                0..=2 => Op::Read { table, key },
                3..=5 if !deleted.contains(&(table, key)) => Op::Update {
                    table,
                    key,
                    val: (rng.next_u64() % 1_000_000) as i64,
                },
                6..=7 => Op::InsertUnique {
                    table,
                    key: unique_key + op_idx as i64,
                    val: (rng.next_u64() % 1_000_000) as i64,
                },
                8..=9 if deleted.insert((table, key)) => Op::Delete { table, key },
                _ => Op::Read { table, key },
            }
        })
        .collect()
}

/// Find the tuple id and value of `key` within an open transaction.
fn lookup(
    session: &mmdb_core::Session,
    txn: &mut mmdb_core::Txn,
    table: &str,
    key: i64,
) -> Result<Option<(TupleId, i64)>, TxnError> {
    session.read(txn, &[table], |db| {
        let tids = db.select(table, "k", &Predicate::Eq(KeyValue::Int(key)))?;
        let flat: Vec<TupleId> = tids.iter().map(|row| row[0]).collect();
        match flat.first() {
            None => Ok(None),
            Some(&tid) => {
                let rows = db.fetch(table, &[tid], &["v"])?;
                let OwnedValue::Int(v) = rows[0][0] else {
                    return Ok(None);
                };
                Ok(Some((tid, v)))
            }
        }
    })
}

/// Execute one generated transaction through a session. Returns the read
/// records on commit, or None when it was a deadlock victim.
fn run_txn(session: &mmdb_core::Session, ops: &[Op]) -> Option<Vec<Option<i64>>> {
    let mut txn = session.begin();
    let mut reads = Vec::new();
    for op in ops {
        let step = match op {
            Op::Read { table, key } => lookup(session, &mut txn, TABLES[*table], *key)
                .map(|found| reads.push(found.map(|(_, v)| v))),
            Op::Update { table, key, val } => {
                match lookup(session, &mut txn, TABLES[*table], *key) {
                    Ok(Some((tid, _))) => {
                        session.update(&mut txn, TABLES[*table], tid, "v", OwnedValue::Int(*val))
                    }
                    Ok(None) => Ok(()),
                    Err(e) => Err(e),
                }
            }
            Op::InsertUnique { table, key, val } => session.insert(
                &mut txn,
                TABLES[*table],
                vec![OwnedValue::Int(*key), OwnedValue::Int(*val)],
            ),
            Op::Delete { table, key } => match lookup(session, &mut txn, TABLES[*table], *key) {
                Ok(Some((tid, _))) => session.delete(&mut txn, TABLES[*table], tid),
                Ok(None) => Ok(()),
                Err(e) => Err(e),
            },
        };
        match step {
            Ok(()) => {}
            Err(TxnError::Deadlock) => return None,
            Err(e) => panic!("unexpected txn error: {e}"),
        }
    }
    match session.commit(txn) {
        Ok(_) => Some(reads),
        Err(TxnError::Deadlock) => None,
        Err(e) => panic!("unexpected commit error: {e}"),
    }
}

type Model = BTreeMap<(usize, i64), i64>;

/// Serially replay one committed transaction on the model, checking its
/// recorded reads. Writes are deferred in the engine, so every read
/// (including the hidden existence reads of update/delete) observes the
/// transaction-entry snapshot `pre`; effects accumulate into `model`.
/// Returns false on the first read mismatch.
fn replay(model: &mut Model, committed: &Committed) -> bool {
    let pre = model.clone();
    let mut r = 0;
    for op in &committed.ops {
        match op {
            Op::Read { table, key } => {
                let got = pre.get(&(*table, *key)).copied();
                if got != committed.reads[r] {
                    return false;
                }
                r += 1;
            }
            Op::Update { table, key, val } => {
                if pre.contains_key(&(*table, *key)) {
                    model.insert((*table, *key), *val);
                }
            }
            Op::InsertUnique { table, key, val } => {
                model.insert((*table, *key), *val);
            }
            Op::Delete { table, key } => {
                if pre.contains_key(&(*table, *key)) {
                    model.remove(&(*table, *key));
                }
            }
        }
    }
    true
}

/// Does any permutation of `committed` serially reproduce `final_state`?
fn some_serial_order(committed: &[Committed], initial: &Model, final_state: &Model) -> bool {
    let n = committed.len();
    let mut order: Vec<usize> = (0..n).collect();
    permute(&mut order, 0, &mut |perm| {
        let mut model = initial.clone();
        for &i in perm {
            if !replay(&mut model, &committed[i]) {
                return false;
            }
        }
        &model == final_state
    })
}

/// Heap's-algorithm permutation search; `accept` short-circuits success.
fn permute(items: &mut Vec<usize>, k: usize, accept: &mut impl FnMut(&[usize]) -> bool) -> bool {
    if k == items.len() {
        return accept(items);
    }
    for i in k..items.len() {
        items.swap(k, i);
        if permute(items, k + 1, accept) {
            return true;
        }
        items.swap(k, i);
    }
    false
}

/// Dump a table as key -> value (sequential scan path).
fn dump(db: &Database, table: usize) -> Model {
    let tids = db
        .select(
            TABLES[table],
            "k",
            &Predicate::greater(KeyValue::Int(i64::MIN)),
        )
        .unwrap();
    let flat: Vec<TupleId> = tids.iter().map(|row| row[0]).collect();
    let rows = db.fetch(TABLES[table], &flat, &["k", "v"]).unwrap();
    let n = rows.len();
    let out: Model = rows
        .into_iter()
        .map(|row| {
            let (OwnedValue::Int(k), OwnedValue::Int(v)) = (&row[0], &row[1]) else {
                panic!("non-int row in {table}");
            };
            ((table, *k), *v)
        })
        .collect();
    // Insert keys are schedule-unique and updates never create rows, so
    // a duplicate key here means isolation was violated.
    assert_eq!(out.len(), n, "duplicate keys in table {table}");
    out
}

fn run_seed(seed: u64) {
    let engine = build_engine();
    let initial: Model = (0..TABLES.len())
        .flat_map(|t| (0..SEED_KEYS).map(move |k| ((t, k), 0)))
        .collect();

    let (tx, rx) = mpsc::channel();
    let mut handles = Vec::new();
    for thread_idx in 0..THREADS {
        let session = engine.session();
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            let mut rng = SplitMix64::new(
                seed.wrapping_add(0x9e37_79b9)
                    .wrapping_mul(thread_idx as u64 + 1),
            );
            for txn_idx in 0..TXNS_PER_THREAD {
                let base =
                    INSERT_BASE + ((thread_idx * TXNS_PER_THREAD + txn_idx) * OPS_PER_TXN) as i64;
                let ops = gen_ops(&mut rng, base);
                if let Some(reads) = run_txn(&session, &ops) {
                    tx.send(Committed { ops, reads }).unwrap();
                }
            }
        }));
    }
    drop(tx);
    for h in handles {
        h.join().unwrap();
    }
    let committed: Vec<Committed> = rx.into_iter().collect();

    let db = engine
        .into_inner()
        .expect("all sessions joined; engine must unwrap");
    let mut final_state = Model::new();
    for t in 0..TABLES.len() {
        final_state.extend(dump(&db, t));
    }

    assert!(
        some_serial_order(&committed, &initial, &final_state),
        "seed {seed}: no serial order of {} committed txns explains the final state\n\
         committed: {committed:#?}\nfinal: {final_state:?}",
        committed.len(),
    );
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.parse().ok()
}

#[test]
fn serializable_across_seeds() {
    if let Some(seed) = env_u64("MMDB_TXN_SEED") {
        run_seed(seed);
        return;
    }
    let n = env_u64("MMDB_TXN_SEEDS").unwrap_or(64);
    for seed in 0..n {
        run_seed(seed);
    }
}

// ---- cached reads under concurrent writers -----------------------------

/// Reader sessions run the same query cached and cold inside one
/// [`mmdb_core::Session::read`] closure — the S-lock pins the table, so
/// the pair observes a single snapshot and must agree bit for bit even
/// while writer sessions commit update bursts between closures. The
/// filtered attribute is unindexed, so cached entries are seq-scan
/// TempLists: exactly the entries eligible for subsumption re-filters
/// and delta application as the writers move partition versions.
fn run_cached_read_seed(seed: u64) -> u64 {
    const ROWS: i64 = 40;
    let engine = TxnEngine::new(Database::in_memory());
    engine.with_db(|db| {
        db.create_table(
            "acct",
            Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]),
        )
        .unwrap();
        db.create_index("acct_k", "acct", "k", IndexKind::Hash)
            .unwrap();
        let mut txn = db.begin();
        for i in 0..ROWS {
            db.insert(
                &mut txn,
                "acct",
                vec![OwnedValue::Int(i), OwnedValue::Int((i * 31) % 100)],
            )
            .unwrap();
        }
        db.commit(txn).unwrap();
    });

    let mut handles = Vec::new();
    for w in 0..2u64 {
        let session = engine.session();
        handles.push(thread::spawn(move || {
            let mut rng = SplitMix64::new(seed.wrapping_mul(31).wrapping_add(w + 1));
            for _ in 0..6 {
                let key = (rng.next_u64() % ROWS as u64) as i64;
                let val = (rng.next_u64() % 100) as i64;
                let mut txn = session.begin();
                let step = match lookup(&session, &mut txn, "acct", key) {
                    Ok(Some((tid, _))) => {
                        session.update(&mut txn, "acct", tid, "v", OwnedValue::Int(val))
                    }
                    Ok(None) => Ok(()),
                    Err(e) => Err(e),
                };
                match step {
                    Ok(()) => match session.commit(txn) {
                        Ok(_) | Err(TxnError::Deadlock) => {}
                        Err(e) => panic!("unexpected commit error: {e}"),
                    },
                    Err(TxnError::Deadlock) => {}
                    Err(e) => panic!("unexpected writer error: {e}"),
                }
            }
        }));
    }
    for r in 0..2u64 {
        let session = engine.session();
        handles.push(thread::spawn(move || {
            let mut rng = SplitMix64::new(seed.wrapping_mul(97).wrapping_add(r + 1));
            for _ in 0..8 {
                let hi = [30i64, 60, 90][(rng.next_u64() % 3) as usize];
                let mut txn = session.begin();
                let pair = session.read(&mut txn, &["acct"], |db| {
                    let run = |cached: bool| {
                        db.query("acct")
                            .filter("v", Predicate::less(KeyValue::Int(hi)))
                            .project(&[("acct", "k"), ("acct", "v")])
                            .parallelism(1)
                            .cache(cached)
                            .run()
                    };
                    Ok((run(true)?, run(false)?))
                });
                match pair {
                    Ok((warm, cold)) => {
                        assert_eq!(
                            warm.rows, cold.rows,
                            "seed {seed}: cached read diverged from its cold twin under \
                             concurrent writers (v < {hi})\n  replay: MMDB_TXN_SEED={seed} \
                             cargo test --test prop_txn cached_reads_against_writers -- \
                             --nocapture"
                        );
                        match session.commit(txn) {
                            Ok(_) | Err(TxnError::Deadlock) => {}
                            Err(e) => panic!("unexpected commit error: {e}"),
                        }
                    }
                    Err(TxnError::Deadlock) => {}
                    Err(e) => panic!("unexpected reader error: {e}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let db = engine
        .into_inner()
        .expect("all sessions joined; engine must unwrap");
    #[cfg(feature = "check")]
    if let Err(msg) = db.deep_check().into_result() {
        panic!("seed {seed}: deep_check after quiescence: {msg}");
    }
    // One more quiescent twin pair: whatever the cache retained through
    // the concurrent phase must still answer exactly.
    let quiescent = |cached: bool| {
        db.query("acct")
            .filter("v", Predicate::less(KeyValue::Int(60)))
            .project(&[("acct", "k"), ("acct", "v")])
            .parallelism(1)
            .cache(cached)
            .run()
            .unwrap()
    };
    assert_eq!(
        quiescent(true).rows,
        quiescent(false).rows,
        "seed {seed}: quiescent cached run diverged from cold"
    );
    db.cache_report().hits
}

#[test]
fn cached_reads_against_writers() {
    if let Some(seed) = env_u64("MMDB_TXN_SEED") {
        run_cached_read_seed(seed);
        return;
    }
    let n = env_u64("MMDB_TXN_SEEDS").unwrap_or(64);
    let hits: u64 = (0..n).map(run_cached_read_seed).sum();
    assert!(
        hits > 0,
        "no warm hit across the whole sweep: the readers never reused an entry"
    );
}

// ---- deadlock negative tests -------------------------------------------

/// Build an engine with `names` one-row tables (key 0, value 0).
fn engine_with_tables(names: &[&str]) -> TxnEngine {
    let engine = TxnEngine::new(Database::in_memory());
    engine.with_db(|db| {
        for t in names {
            db.create_table(t, Schema::of(&[("k", AttrType::Int), ("v", AttrType::Int)]))
                .unwrap();
            db.create_index(&format!("{t}_k"), t, "k", IndexKind::Hash)
                .unwrap();
            let mut txn = db.begin();
            db.insert(&mut txn, t, vec![OwnedValue::Int(0), OwnedValue::Int(0)])
                .unwrap();
            db.commit(txn).unwrap();
        }
    });
    engine
}

/// Count rows in `table`.
fn row_count(db: &Database, table: &str) -> usize {
    db.select(table, "k", &Predicate::greater(KeyValue::Int(i64::MIN)))
        .unwrap()
        .len()
}

/// Run a guaranteed lock cycle over `tables`: thread i S-locks table i
/// (read), then — after every thread holds its read lock — inserts into
/// table (i+1) % n and commits. Returns per-thread commit outcomes
/// (true = committed) and the recovered database.
fn run_cycle(tables: &'static [&'static str]) -> (Vec<bool>, Database) {
    let engine = engine_with_tables(tables);
    let n = tables.len();
    let barrier = std::sync::Arc::new(Barrier::new(n));
    let mut handles = Vec::new();
    for i in 0..n {
        let session = engine.session();
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let mut txn = session.begin();
            // S-lock table i via a read.
            session
                .select(&mut txn, tables[i], "k", &Predicate::Eq(KeyValue::Int(0)))
                .unwrap();
            barrier.wait();
            // Insert into the next table: X-locks its partition + fence
            // at commit, closing the cycle.
            let next = tables[(i + 1) % n];
            let marker = vec![OwnedValue::Int(100 + i as i64), OwnedValue::Int(i as i64)];
            if let Err(e) = session.insert(&mut txn, next, marker) {
                assert!(matches!(e, TxnError::Deadlock), "unexpected: {e}");
                return false;
            }
            match session.commit(txn) {
                Ok(_) => true,
                Err(TxnError::Deadlock) => false,
                Err(e) => panic!("unexpected commit error: {e}"),
            }
        }));
    }
    let outcomes: Vec<bool> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let db = engine.into_inner().expect("sessions joined");
    (outcomes, db)
}

#[test]
fn two_txn_cycle_aborts_exactly_one_victim() {
    static TABLES2: [&str; 2] = ["dl_x", "dl_y"];
    let (outcomes, db) = run_cycle(&TABLES2);
    let committed = outcomes.iter().filter(|&&c| c).count();
    assert_eq!(
        committed, 1,
        "a 2-cycle must abort exactly one victim (outcomes: {outcomes:?})"
    );
    // The survivor's insert is present; the victim's left no trace.
    for (i, &ok) in outcomes.iter().enumerate() {
        let target = TABLES2[(i + 1) % 2];
        let expected = if ok { 2 } else { 1 };
        assert_eq!(
            row_count(&db, target),
            expected,
            "thread {i} (committed={ok}) row count in {target}"
        );
    }
}

#[test]
fn three_txn_cycle_aborts_a_victim_and_survivors_commit() {
    static TABLES3: [&str; 3] = ["dl3_a", "dl3_b", "dl3_c"];
    let (outcomes, db) = run_cycle(&TABLES3);
    let committed = outcomes.iter().filter(|&&c| c).count();
    assert!(
        committed < 3,
        "a 3-cycle must abort at least one victim (outcomes: {outcomes:?})"
    );
    assert!(
        committed >= 1,
        "deadlock detection must not abort every transaction (outcomes: {outcomes:?})"
    );
    for (i, &ok) in outcomes.iter().enumerate() {
        let target = TABLES3[(i + 1) % 3];
        let expected = if ok { 2 } else { 1 };
        assert_eq!(
            row_count(&db, target),
            expected,
            "thread {i} (committed={ok}) row count in {target}"
        );
    }
}

#[test]
fn conflict_without_cycle_never_aborts() {
    let engine = engine_with_tables(&["nf_x", "nf_y"]);
    let s1 = engine.session();
    let mut t1 = s1.begin();
    // T1 S-locks x.
    s1.select(&mut t1, "nf_x", "k", &Predicate::Eq(KeyValue::Int(0)))
        .unwrap();

    // T2 writes x: its commit must block behind T1's read lock — a
    // conflict, but no cycle.
    let snapshot = engine.lock_request_count();
    let s2 = engine.session();
    let t2_handle = thread::spawn(move || {
        let mut t2 = s2.begin();
        s2.insert(
            &mut t2,
            "nf_x",
            vec![OwnedValue::Int(1), OwnedValue::Int(1)],
        )
        .unwrap();
        s2.commit(t2).is_ok()
    });
    // Wait (event-driven, no sleeps) until T2's commit has issued lock
    // requests — i.e. it is queued behind T1.
    while engine.lock_request_count() <= snapshot {
        thread::yield_now();
    }

    // T1 writes y and commits; T2 then unblocks and commits.
    s1.insert(
        &mut t1,
        "nf_y",
        vec![OwnedValue::Int(1), OwnedValue::Int(1)],
    )
    .unwrap();
    assert!(s1.commit(t1).is_ok(), "T1 must commit (no cycle exists)");
    assert!(
        t2_handle.join().unwrap(),
        "T2 must commit after T1 releases (conflict without cycle)"
    );

    drop(s1);
    let db = engine.into_inner().expect("sessions dropped");
    assert_eq!(row_count(&db, "nf_x"), 2);
    assert_eq!(row_count(&db, "nf_y"), 2);
}
