//! Property tests: the partition-parallel operators are bit-identical —
//! same rows, same order — to their serial counterparts over arbitrary
//! relations, predicates, and degrees of parallelism.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_exec::{
    hash_join, parallel_hash_join, parallel_project_hash, parallel_select_scan,
    parallel_theta_join, select_scan, theta_nested_loops_join, ExecConfig, JoinSide, Predicate,
    ThetaOp,
};
use mmdb_exec::{parallel_nested_loops_join, project_hash};
use mmdb_storage::{
    AttrType, KeyValue, OutputField, OwnedValue, PartitionConfig, Relation, ResultDescriptor,
    Schema, TempList, TupleId,
};
use proptest::prelude::*;

/// Degrees of parallelism the sweep exercises (1 = the serial path).
const DOPS: [usize; 4] = [1, 2, 4, 8];

/// Build a two-column relation over tiny partitions, so even small inputs
/// span several partitions (the parallel scan's work unit).
fn rel_with_values(name: &str, values: &[i64]) -> (Relation, Vec<TupleId>) {
    let schema = Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]);
    let mut rel = Relation::new(name, schema, PartitionConfig::tiny());
    let tids = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            rel.insert(&[OwnedValue::Int(i as i64), OwnedValue::Int(*v)])
                .unwrap()
        })
        .collect();
    (rel, tids)
}

/// Small key space forces heavy duplication and overlap.
fn values_strategy(max_len: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-8i64..8, 0..max_len)
}

/// A predicate over the same small key space: point, range, or half-open.
fn predicate(variant: u8, a: i64, b: i64) -> Predicate {
    match variant % 4 {
        0 => Predicate::Eq(KeyValue::Int(a)),
        1 => Predicate::between(KeyValue::Int(a.min(b)), KeyValue::Int(a.max(b))),
        2 => Predicate::greater(KeyValue::Int(a)),
        _ => Predicate::less(KeyValue::Int(a)),
    }
}

fn theta_op(variant: u8) -> ThetaOp {
    match variant % 6 {
        0 => ThetaOp::Eq,
        1 => ThetaOp::Ne,
        2 => ThetaOp::Lt,
        3 => ThetaOp::Le,
        4 => ThetaOp::Gt,
        _ => ThetaOp::Ge,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_scan_matches_serial(
        values in values_strategy(120),
        variant in 0u8..4,
        a in -8i64..8,
        b in -8i64..8,
    ) {
        let (rel, tids) = rel_with_values("r", &values);
        let pred = predicate(variant, a, b);
        let serial = select_scan(&rel, 1, &tids, &pred).unwrap();
        #[cfg(all(feature = "check", debug_assertions))]
        mmdb_check::storage_checks::check_relation(&rel)
            .into_result()
            .map_err(TestCaseError::fail)?;
        for dop in DOPS {
            let par = parallel_select_scan(&rel, 1, &pred, ExecConfig::with_dop(dop)).unwrap();
            prop_assert_eq!(&par, &serial, "dop={}", dop);
        }
    }

    #[test]
    fn parallel_hash_join_matches_serial(
        ov in values_strategy(80),
        iv in values_strategy(80),
    ) {
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let serial = hash_join(outer, inner).unwrap();
        // The pool's merge rule must be completion-order independent on
        // exactly this result shape.
        #[cfg(all(feature = "check", debug_assertions))]
        {
            let tagged: Vec<(usize, Vec<TupleId>)> = serial
                .pairs
                .iter()
                .enumerate()
                .map(|(i, row)| (i, row.to_vec()))
                .collect();
            mmdb_check::merge_checks::check_merge_determinism(&tagged)
                .into_result()
                .map_err(TestCaseError::fail)?;
        }
        for dop in DOPS {
            let cfg = ExecConfig::with_dop(dop);
            let par = parallel_hash_join(outer, inner, cfg).unwrap();
            prop_assert_eq!(&par.pairs, &serial.pairs, "hash dop={}", dop);
            // The nested-loops fallback agrees on the equijoin too.
            let nl = parallel_nested_loops_join(outer, inner, cfg).unwrap();
            let nl_serial = theta_nested_loops_join(outer, inner, ThetaOp::Eq).unwrap();
            prop_assert_eq!(&nl.pairs, &nl_serial.pairs, "nested dop={}", dop);
        }
    }

    #[test]
    fn parallel_theta_join_matches_serial(
        ov in values_strategy(40),
        iv in values_strategy(40),
        opv in 0u8..6,
    ) {
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let op = theta_op(opv);
        let serial = theta_nested_loops_join(outer, inner, op).unwrap();
        for dop in DOPS {
            let par = parallel_theta_join(outer, inner, op, ExecConfig::with_dop(dop)).unwrap();
            prop_assert_eq!(&par.pairs, &serial.pairs, "op={:?} dop={}", op, dop);
        }
    }

    #[test]
    fn parallel_distinct_matches_serial(
        values in values_strategy(150),
    ) {
        let (rel, tids) = rel_with_values("r", &values);
        let list = TempList::from_tids(tids);
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let serial = project_hash(&list, &desc, &[&rel]).unwrap();
        for dop in DOPS {
            let par =
                parallel_project_hash(&list, &desc, &[&rel], ExecConfig::with_dop(dop)).unwrap();
            prop_assert_eq!(&par.rows, &serial.rows, "dop={}", dop);
            #[cfg(all(feature = "check", debug_assertions))]
            mmdb_check::storage_checks::check_templist(&par.rows, &desc, &[&rel])
                .into_result()
                .map_err(TestCaseError::fail)?;
        }
    }

    #[test]
    fn byte_threshold_never_changes_results(
        ov in values_strategy(80),
        iv in values_strategy(80),
        variant in 0u8..4,
        a in -8i64..8,
        b in -8i64..8,
    ) {
        // The bytes-based parallel_threshold only picks the *path*
        // (inline serial vs morsel fan-out); results must be identical at
        // threshold 0 (always fan out), a threshold these tiny inputs sit
        // below (always inline), and everything between.
        let (orel, otids) = rel_with_values("o", &ov);
        let (irel, itids) = rel_with_values("i", &iv);
        let outer = JoinSide::new(&orel, 1, &otids);
        let inner = JoinSide::new(&irel, 1, &itids);
        let pred = predicate(variant, a, b);
        let list = TempList::from_tids(otids.clone());
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let scan0 = parallel_select_scan(&orel, 1, &pred, ExecConfig::with_dop(4)).unwrap();
        let join0 = parallel_hash_join(outer, inner, ExecConfig::with_dop(4)).unwrap();
        let dist0 = parallel_project_hash(&list, &desc, &[&orel], ExecConfig::with_dop(4)).unwrap();
        for threshold in [1usize, 4096, 1 << 30] {
            let cfg = ExecConfig { parallel_threshold: threshold, ..ExecConfig::with_dop(4) };
            let scan = parallel_select_scan(&orel, 1, &pred, cfg).unwrap();
            prop_assert_eq!(&scan, &scan0, "scan threshold={}", threshold);
            let join = parallel_hash_join(outer, inner, cfg).unwrap();
            prop_assert_eq!(&join.pairs, &join0.pairs, "join threshold={}", threshold);
            let dist = parallel_project_hash(&list, &desc, &[&orel], cfg).unwrap();
            prop_assert_eq!(&dist.rows, &dist0.rows, "distinct threshold={}", threshold);
        }
    }
}

/// Morsel-size edge cases: empty input, a single row, and inputs far
/// smaller than one morsel (256 KiB covers ~4k tuples, so every input
/// here fits in one morsel at dop 1 and forces degenerate splits at
/// dop 8) — every dop must agree with the serial operator exactly.
#[test]
fn morsel_larger_than_input_and_degenerate_sizes() {
    for n in [0usize, 1, 2, 7] {
        let values: Vec<i64> = (0..n as i64).collect();
        let (rel, tids) = rel_with_values("r", &values);
        let (irel, itids) = rel_with_values("i", &values);
        let pred = Predicate::greater(KeyValue::Int(-1));
        let serial_scan = select_scan(&rel, 1, &tids, &pred).unwrap();
        let serial_join = hash_join(
            JoinSide::new(&rel, 1, &tids),
            JoinSide::new(&irel, 1, &itids),
        )
        .unwrap();
        let list = TempList::from_tids(tids.clone());
        let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
        let serial_dist = project_hash(&list, &desc, &[&rel]).unwrap();
        for dop in DOPS {
            let cfg = ExecConfig::with_dop(dop);
            let scan = parallel_select_scan(&rel, 1, &pred, cfg).unwrap();
            assert_eq!(scan, serial_scan, "scan n={n} dop={dop}");
            let join = parallel_hash_join(
                JoinSide::new(&rel, 1, &tids),
                JoinSide::new(&irel, 1, &itids),
                cfg,
            )
            .unwrap();
            assert_eq!(join.pairs, serial_join.pairs, "join n={n} dop={dop}");
            let dist = parallel_project_hash(&list, &desc, &[&rel], cfg).unwrap();
            assert_eq!(dist.rows, serial_dist.rows, "distinct n={n} dop={dop}");
        }
    }
}
