//! Property suite for the intermediate-result reuse cache: random
//! query/write interleavings over a live [`Database`], asserting that
//! cached execution is *bit-identical* to cold execution at every step.
//!
//! Each seeded script mixes queries from a small family (so repeats —
//! and therefore cache hits — are common) with committed inserts,
//! updates, and deletes. After every query three runs must agree
//! exactly: `.cache(true)` (may hit), `.cache(true)` again (warm), and
//! `.cache(false)` (the cold oracle that never consults the cache). A
//! stale serve — any divergence after a write moved an input table's
//! partition versions — fails with the seed and step that produced it.
//!
//! To replay a single seed bit-for-bit:
//!
//! ```text
//! MMDB_CACHE_SEED=<seed> cargo test --test prop_cache cache_across_seeds -- --nocapture
//! ```
//!
//! `MMDB_CACHE_SEEDS=<n>` widens or narrows the sweep (default 24).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind, QueryOutput};
use mmdb_exec::Predicate;
use mmdb_recovery::SplitMix64;
use mmdb_storage::{AttrType, KeyValue, Schema, TupleId};

/// Steps per scripted run (each step is one query or one commit).
const SCRIPT_LEN: u64 = 40;

/// Age thresholds are drawn from a small set so the query family
/// repeats often enough to exercise warm hits.
const THRESHOLDS: [i64; 4] = [20, 40, 60, 80];

fn fixture() -> (Database, Vec<TupleId>, Vec<TupleId>) {
    let mut db = Database::in_memory();
    db.create_table(
        "dept",
        Schema::of(&[("dname", AttrType::Str), ("id", AttrType::Int)]),
    )
    .unwrap();
    db.create_index("dept_id", "dept", "id", IndexKind::TTree)
        .unwrap();
    // `salary` is deliberately unindexed: selections on it run as
    // sequential scans, the only access path whose cached TempLists
    // are order-safe for subsumption AND delta maintenance.
    db.create_table(
        "emp",
        Schema::of(&[
            ("ename", AttrType::Str),
            ("age", AttrType::Int),
            ("dept_id", AttrType::Int),
            ("salary", AttrType::Int),
        ]),
    )
    .unwrap();
    db.create_index("emp_age", "emp", "age", IndexKind::TTree)
        .unwrap();
    db.create_index("emp_dept", "emp", "dept_id", IndexKind::TTree)
        .unwrap();

    let mut txn = db.begin();
    for d in 1..=5i64 {
        db.insert(&mut txn, "dept", vec![format!("dept-{d}").into(), d.into()])
            .unwrap();
    }
    let dept_tids = db.commit(txn).unwrap();
    let mut txn = db.begin();
    for i in 0..30i64 {
        db.insert(
            &mut txn,
            "emp",
            vec![
                format!("emp-{i}").into(),
                ((i * 37) % 100).into(),
                (i % 5 + 1).into(),
                ((i * 53) % 100).into(),
            ],
        )
        .unwrap();
    }
    let emp_tids = db.commit(txn).unwrap();
    (db, dept_tids, emp_tids)
}

/// One query from the family, parameterized by the script RNG. Returns
/// a builder-producing closure so the same query can run under both
/// cache settings.
fn run_query(db: &Database, shape: u64, threshold: i64, cached: bool) -> QueryOutput {
    let q = match shape % 6 {
        0 => db
            .query("emp")
            .filter("age", Predicate::greater(KeyValue::Int(threshold)))
            .project(&[("emp", "ename"), ("emp", "age")]),
        1 => db
            .query("emp")
            .filter("age", Predicate::greater(KeyValue::Int(threshold)))
            .join("dept_id", "dept", "id")
            .project(&[("emp", "ename"), ("dept", "dname")]),
        2 => db
            .query("emp")
            .join("dept_id", "dept", "id")
            .project(&[("dept", "dname")])
            .distinct(),
        3 => db
            .query("emp")
            .join("dept_id", "dept", "id")
            .filter_on("dept", "dname", Predicate::Eq(KeyValue::from("dept-2")))
            .project(&[("emp", "ename"), ("emp", "age"), ("dept", "dname")]),
        // Seq-scan selections on the unindexed salary attribute: the
        // threshold ladder makes wide-then-narrow repeats common, so
        // these exercise subsumption re-filters and delta application.
        4 => db
            .query("emp")
            .filter("salary", Predicate::less(KeyValue::Int(threshold)))
            .project(&[("emp", "ename"), ("emp", "salary")]),
        _ => db
            .query("emp")
            .filter("salary", Predicate::less(KeyValue::Int(threshold)))
            .join("dept_id", "dept", "id")
            .project(&[("emp", "ename"), ("dept", "dname")]),
    };
    q.parallelism(1).cache(cached).run().unwrap()
}

/// Drive one seeded script; panics with seed + step context on any
/// divergence. Returns the final cache counters.
fn run_script(seed: u64) -> mmdb_exec::CacheReport {
    let (mut db, mut dept_tids, mut emp_tids) = fixture();
    let mut rng = SplitMix64::new(seed);
    let mut next_emp = 1000i64;
    for step in 0..SCRIPT_LEN {
        let ctx = |what: &str| {
            format!(
                "seed {seed} step {step}: {what}\n  replay: MMDB_CACHE_SEED={seed} \
                 cargo test --test prop_cache cache_across_seeds -- --nocapture"
            )
        };
        if rng.next_u64() % 10 < 6 {
            // Query step: cached, warm, and cold runs must agree bit
            // for bit (rows AND row order — TempLists are positional).
            let shape = rng.next_u64();
            let threshold = THRESHOLDS[(rng.next_u64() % 4) as usize];
            let first = run_query(&db, shape, threshold, true);
            let warm = run_query(&db, shape, threshold, true);
            let cold = run_query(&db, shape, threshold, false);
            assert_eq!(first.rows, cold.rows, "{}", ctx("cached vs cold"));
            assert_eq!(warm.rows, cold.rows, "{}", ctx("warm vs cold"));
            assert_eq!(first.columns, cold.columns, "{}", ctx("columns"));
        } else {
            // Write step: a committed insert/update/delete must move the
            // touched partition's version and unserve dependent entries.
            let mut txn = db.begin();
            match rng.next_u64() % 5 {
                0 => {
                    let age = (rng.next_u64() % 100) as i64;
                    let dept = (rng.next_u64() % 5 + 1) as i64;
                    let salary = (rng.next_u64() % 100) as i64;
                    db.insert(
                        &mut txn,
                        "emp",
                        vec![
                            format!("emp-{next_emp}").into(),
                            age.into(),
                            dept.into(),
                            salary.into(),
                        ],
                    )
                    .unwrap();
                    next_emp += 1;
                }
                1 if !emp_tids.is_empty() => {
                    let tid = emp_tids[(rng.next_u64() as usize) % emp_tids.len()];
                    let age = (rng.next_u64() % 100) as i64;
                    db.update(&mut txn, "emp", tid, "age", age.into()).unwrap();
                }
                2 if !emp_tids.is_empty() => {
                    // Salary updates land on hot seq-scan entries as
                    // delta records rather than invalidations.
                    let tid = emp_tids[(rng.next_u64() as usize) % emp_tids.len()];
                    let salary = (rng.next_u64() % 100) as i64;
                    db.update(&mut txn, "emp", tid, "salary", salary.into())
                        .unwrap();
                }
                3 if emp_tids.len() > 5 => {
                    let i = (rng.next_u64() as usize) % emp_tids.len();
                    db.delete(&mut txn, "emp", emp_tids.swap_remove(i)).unwrap();
                }
                _ if dept_tids.len() > 2 => {
                    let i = (rng.next_u64() as usize) % dept_tids.len();
                    db.delete(&mut txn, "dept", dept_tids.swap_remove(i))
                        .unwrap();
                }
                _ => {}
            }
            let inserted = db
                .commit(txn)
                .unwrap_or_else(|e| panic!("{}: {e}", ctx("commit")));
            emp_tids.extend(inserted);
        }
        #[cfg(feature = "check")]
        if let Err(msg) = db.deep_check().into_result() {
            panic!("{}", ctx(&format!("deep_check: {msg}")));
        }
    }
    db.cache_report()
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[test]
fn cache_across_seeds() {
    let n = env_u64("MMDB_CACHE_SEEDS").unwrap_or(24);
    let seeds: Vec<u64> = match env_u64("MMDB_CACHE_SEED") {
        Some(s) => vec![s],
        None => (0..n).collect(),
    };
    let single = seeds.len() == 1;
    let mut hits = 0;
    let mut subsumed = 0;
    let mut applied = 0;
    for seed in seeds {
        let report = run_script(seed);
        hits += report.hits;
        subsumed += report.subsumed_hits;
        applied += report.delta_applies;
    }
    assert!(
        hits > 0,
        "no warm hit across the whole sweep: the suite is not exercising reuse"
    );
    // A single-seed replay may legitimately miss the rarer serve modes;
    // the full sweep must exercise both.
    if !single {
        assert!(
            subsumed > 0,
            "no subsumed serve across the whole sweep: the threshold ladder is not \
             exercising the re-filter path"
        );
        assert!(
            applied > 0,
            "no delta application across the whole sweep: salary writes are not \
             landing on hot seq-scan entries"
        );
    }
}

/// Regression shape: a write *between* a cold run and a would-be warm
/// run must force recomputation (the exact stale-serve bug class).
#[test]
fn write_between_runs_recomputes() {
    let (mut db, _, _) = fixture();
    let q = |db: &Database| {
        db.query("emp")
            .filter("age", Predicate::greater(KeyValue::Int(60)))
            .join("dept_id", "dept", "id")
            .project(&[("emp", "ename"), ("dept", "dname")])
            .parallelism(1)
            .cache(true)
            .run()
            .unwrap()
    };
    let cold = q(&db);
    let mut txn = db.begin();
    db.insert(
        &mut txn,
        "emp",
        vec!["newcomer".into(), 99i64.into(), 1i64.into(), 50i64.into()],
    )
    .unwrap();
    db.commit(txn).unwrap();
    let after = q(&db);
    assert_eq!(after.rows.len(), cold.rows.len() + 1);
    let fresh = db
        .query("emp")
        .filter("age", Predicate::greater(KeyValue::Int(60)))
        .join("dept_id", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .parallelism(1)
        .cache(false)
        .run()
        .unwrap();
    assert_eq!(after.rows, fresh.rows);
}

/// Focused subsumption shape: a narrow seq-scan selection answered by
/// re-filtering a cached wider entry must be bit-identical to cold.
#[test]
fn narrow_query_is_served_from_wide_entry() {
    let (db, _, _) = fixture();
    let run = |hi: i64, cached: bool| {
        db.query("emp")
            .filter("salary", Predicate::less(KeyValue::Int(hi)))
            .project(&[("emp", "ename"), ("emp", "salary")])
            .parallelism(1)
            .cache(cached)
            .run()
            .unwrap()
    };
    run(80, true); // memoize the wide entry
    let narrow = run(40, true);
    let cold = run(40, false);
    assert_eq!(narrow.rows, cold.rows);
    assert_eq!(narrow.columns, cold.columns);
    let report = db.cache_report();
    assert!(
        report.subsumed_hits >= 1,
        "expected a subsumed serve, report: {report:?}"
    );
}
