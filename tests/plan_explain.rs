//! Golden-file tests for the two-phase planner's explain output: one
//! exact snapshot per §3.3 join method, plus a filter-pushdown case and
//! a join-reordering case whose plans demonstrably differ from naive
//! placement while producing identical results.
//!
//! All queries run with `parallelism(1)` — serial execution makes the
//! actual comparison counts deterministic, so the full
//! estimates-vs-actuals rendering can be snapshotted, not just the plan
//! shape.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind, QueryOutput};
use mmdb_exec::{JoinMethod, Predicate};
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};

/// dept(dname, id) — T-Tree on id; 3 rows.
/// emp(ename, age, dept_id, dept_ptr) — T-Trees on age and dept_id, a
/// §2.1 pointer FK to dept; 5 rows.
/// orders(oid, dept_id) — no index on the join column; 60 rows.
fn fixture() -> Database {
    let mut db = Database::in_memory();
    db.create_table(
        "dept",
        Schema::of(&[("dname", AttrType::Str), ("id", AttrType::Int)]),
    )
    .unwrap();
    db.create_index("dept_id", "dept", "id", IndexKind::TTree)
        .unwrap();
    db.create_table(
        "emp",
        Schema::of(&[
            ("ename", AttrType::Str),
            ("age", AttrType::Int),
            ("dept_id", AttrType::Int),
            ("dept_ptr", AttrType::Ptr),
        ]),
    )
    .unwrap();
    db.create_index("emp_age", "emp", "age", IndexKind::TTree)
        .unwrap();
    db.create_index("emp_dept", "emp", "dept_id", IndexKind::TTree)
        .unwrap();
    db.create_table(
        "orders",
        Schema::of(&[("oid", AttrType::Int), ("dept_id", AttrType::Int)]),
    )
    .unwrap();
    // An index on oid only: the join column dept_id stays unindexed.
    db.create_index("orders_oid", "orders", "oid", IndexKind::TTree)
        .unwrap();

    let mut txn = db.begin();
    for (d, i) in [("Toy", 1i64), ("Shoe", 2), ("Linen", 3)] {
        db.insert(&mut txn, "dept", vec![d.into(), i.into()])
            .unwrap();
    }
    let dept_tids = db.commit(txn).unwrap();

    let mut txn = db.begin();
    for (e, a, d) in [
        ("Dave", 24i64, 1i64),
        ("Suzan", 70, 1),
        ("Yaman", 54, 2),
        ("Jane", 71, 2),
        ("Cindy", 22, 3),
    ] {
        db.insert(
            &mut txn,
            "emp",
            vec![
                e.into(),
                a.into(),
                d.into(),
                OwnedValue::Ptr(Some(dept_tids[(d - 1) as usize])),
            ],
        )
        .unwrap();
    }
    for i in 0..60i64 {
        db.insert(&mut txn, "orders", vec![i.into(), (i % 3 + 1).into()])
            .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

fn sorted_rows(out: &QueryOutput) -> Vec<String> {
    let mut rows: Vec<String> = out.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn golden_tree_merge() {
    let db = fixture();
    let out = db
        .query("emp")
        .join("dept_id", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
  join[TreeMerge] emp.dept_id = dept.id  [est_rows=5 act_rows=5 est_cmp=11 act_cmp=16]
      rejected: TreeJoin est_cmp=13, HashJoin est_cmp=23, SortMerge est_cmp=15, NestedLoops est_cmp=15
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
"
    );
}

#[test]
fn golden_tree_join() {
    let db = fixture();
    let out = db
        .query("emp")
        .filter("age", Predicate::greater(KeyValue::Int(60)))
        .join("dept_id", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 2);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=2 act_rows=2 est_cmp=0 act_cmp=0]
  join[TreeJoin] emp.dept_id = dept.id  [est_rows=2 act_rows=2 est_cmp=5 act_cmp=8]
      rejected: HashJoin est_cmp=11, SortMerge est_cmp=8, NestedLoops est_cmp=6
    select emp.age > 60 via TreeLookup  [est_rows=2 act_rows=2 est_cmp=2 act_cmp=4]
"
    );
}

#[test]
fn golden_hash_join() {
    let db = fixture();
    // orders.dept_id carries no index, so the §3.3.4 formulas decide
    // between the list-based methods: hashing wins at these sizes.
    let out = db
        .query("emp")
        .join("dept_id", "orders", "dept_id")
        .project(&[("emp", "ename"), ("orders", "oid")])
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 100);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, orders.oid]  [est_rows=5 act_rows=100 est_cmp=0 act_cmp=0]
  join[HashJoin] emp.dept_id = orders.dept_id  [est_rows=5 act_rows=100 est_cmp=80 act_cmp=100]
      rejected: SortMerge est_cmp=211, NestedLoops est_cmp=300
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
    scan orders  [est_rows=60 act_rows=60 est_cmp=0 act_cmp=0]
"
    );
}

#[test]
fn golden_precomputed() {
    let db = fixture();
    let out = db
        .query("emp")
        .join("dept_ptr", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
  join[Precomputed] emp.dept_ptr = dept.id  [est_rows=5 act_rows=5 est_cmp=5 act_cmp=0]
      rejected: TreeJoin est_cmp=13, HashJoin est_cmp=23, SortMerge est_cmp=15, NestedLoops est_cmp=15
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
"
    );
}

#[test]
fn golden_forced_sort_merge() {
    let db = fixture();
    let out = db
        .query("emp")
        .join("dept_id", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .force_join_method(JoinMethod::SortMerge)
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
  join[SortMerge] emp.dept_id = dept.id  [est_rows=5 act_rows=5 est_cmp=15 act_cmp=15]
      rejected: TreeMerge est_cmp=11, TreeJoin est_cmp=13, HashJoin est_cmp=23, NestedLoops est_cmp=15
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
    scan dept  [est_rows=3 act_rows=3 est_cmp=0 act_cmp=0]
"
    );
}

#[test]
fn golden_forced_nested_loops() {
    let db = fixture();
    let out = db
        .query("emp")
        .join("dept_id", "dept", "id")
        .project(&[("emp", "ename"), ("dept", "dname")])
        .force_join_method(JoinMethod::NestedLoops)
        .parallelism(1)
        .run()
        .unwrap();
    assert_eq!(out.rows.len(), 5);
    assert_eq!(
        out.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
  join[NestedLoops] emp.dept_id = dept.id  [est_rows=5 act_rows=5 est_cmp=15 act_cmp=15]
      rejected: TreeMerge est_cmp=11, TreeJoin est_cmp=13, HashJoin est_cmp=23, SortMerge est_cmp=15
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
    scan dept  [est_rows=3 act_rows=3 est_cmp=0 act_cmp=0]
"
    );
}

#[test]
fn golden_pushdown_changes_the_plan_not_the_answer() {
    let db = fixture();
    let q = |pushdown: bool| {
        db.query("emp")
            .join("dept_id", "dept", "id")
            .filter_on("dept", "dname", Predicate::Eq(KeyValue::from("Shoe")))
            .project(&[("emp", "ename")])
            .pushdown(pushdown)
            .reorder(pushdown)
            .parallelism(1)
            .run()
            .unwrap()
    };
    let pushed = q(true);
    let naive = q(false);
    assert_eq!(
        pushed.profile.render(),
        "\
project [emp.ename]  [est_rows=1 act_rows=2 est_cmp=0 act_cmp=0]
  join[NestedLoops] emp.dept_id = dept.id  [est_rows=1 act_rows=2 est_cmp=0 act_cmp=5]
      rejected: HashJoin est_cmp=20, SortMerge est_cmp=10
    scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
    select dept.dname = \"Shoe\" via SequentialScan  [est_rows=0 act_rows=1 est_cmp=3 act_cmp=3]
"
    );
    assert_eq!(
        naive.profile.render(),
        "\
project [emp.ename]  [est_rows=1 act_rows=2 est_cmp=0 act_cmp=0]
  filter dept.dname = \"Shoe\"  [est_rows=1 act_rows=2 est_cmp=5 act_cmp=5]
    join[TreeMerge] emp.dept_id = dept.id  [est_rows=5 act_rows=5 est_cmp=11 act_cmp=16]
        rejected: TreeJoin est_cmp=13, HashJoin est_cmp=23, SortMerge est_cmp=15, NestedLoops est_cmp=15
      scan emp  [est_rows=5 act_rows=5 est_cmp=0 act_cmp=0]
"
    );
    assert_ne!(pushed.profile.render(), naive.profile.render());
    assert_eq!(sorted_rows(&pushed), sorted_rows(&naive));
    assert_eq!(
        sorted_rows(&pushed),
        vec!["[Str(\"Jane\")]", "[Str(\"Yaman\")]"]
    );
}

#[test]
fn golden_reorder_changes_the_plan_not_the_answer() {
    let db = fixture();
    // Written order joins the costlier inner (emp) first; the greedy
    // planner flips to the cheaper dept join.
    let q = |reorder: bool| {
        db.query("orders")
            .join("dept_id", "emp", "dept_id")
            .join_from("orders", "dept_id", "dept", "id")
            .project(&[("orders", "oid"), ("emp", "ename"), ("dept", "dname")])
            .reorder(reorder)
            .parallelism(1)
            .run()
            .unwrap()
    };
    let reordered = q(true);
    let written = q(false);
    assert_eq!(
        reordered.profile.render(),
        "\
project [orders.oid, emp.ename, dept.dname]  [est_rows=60 act_rows=100 est_cmp=0 act_cmp=0]
  join[TreeJoin] orders.dept_id = emp.dept_id  [est_rows=60 act_rows=100 est_cmp=199 act_cmp=300]
      rejected: HashJoin est_cmp=245, SortMerge est_cmp=211, NestedLoops est_cmp=300
    join[TreeJoin] orders.dept_id = dept.id  [est_rows=60 act_rows=60 est_cmp=155 act_cmp=220]
        rejected: HashJoin est_cmp=243, SortMerge est_cmp=207, NestedLoops est_cmp=180
      scan orders  [est_rows=60 act_rows=60 est_cmp=0 act_cmp=0]
"
    );
    assert_eq!(
        written.profile.render(),
        "\
project [orders.oid, emp.ename, dept.dname]  [est_rows=60 act_rows=100 est_cmp=0 act_cmp=0]
  join[TreeJoin] orders.dept_id = dept.id  [est_rows=60 act_rows=100 est_cmp=155 act_cmp=220]
      rejected: HashJoin est_cmp=243, SortMerge est_cmp=207, NestedLoops est_cmp=180
    join[TreeJoin] orders.dept_id = emp.dept_id  [est_rows=60 act_rows=100 est_cmp=199 act_cmp=300]
        rejected: HashJoin est_cmp=245, SortMerge est_cmp=211, NestedLoops est_cmp=300
      scan orders  [est_rows=60 act_rows=60 est_cmp=0 act_cmp=0]
"
    );
    assert_ne!(reordered.profile.render(), written.profile.render());
    assert_eq!(sorted_rows(&reordered), sorted_rows(&written));
    assert_eq!(reordered.rows.len(), 100);
}

#[test]
fn golden_cached_subtree() {
    let db = fixture();
    let q = || {
        db.query("emp")
            .filter("age", Predicate::greater(KeyValue::Int(60)))
            .join("dept_id", "dept", "id")
            .project(&[("emp", "ename"), ("dept", "dname")])
            .parallelism(1)
            .cache(true)
    };
    let cold = q().run().unwrap();
    assert_eq!(cold.profile.render(), {
        "\
project [emp.ename, dept.dname]  [est_rows=2 act_rows=2 est_cmp=0 act_cmp=0]
  join[TreeJoin] emp.dept_id = dept.id  [est_rows=2 act_rows=2 est_cmp=5 act_cmp=8]
      rejected: HashJoin est_cmp=11, SortMerge est_cmp=8, NestedLoops est_cmp=6
    select emp.age > 60 via TreeLookup  [est_rows=2 act_rows=2 est_cmp=2 act_cmp=4]
"
    });
    // The warm run substitutes the whole join subtree: the canonical
    // form is method-independent, so the snapshot stays stable even if
    // cost tweaks change which join kernel the cold run picked.
    let warm = q().run().unwrap();
    assert_eq!(sorted_rows(&warm), sorted_rows(&cold));
    assert_eq!(
        warm.profile.render(),
        "\
project [emp.ename, dept.dname]  [est_rows=2 act_rows=2 est_cmp=0 act_cmp=0]
  [cached] join(sel(emp.age > 60), emp.dept_id=dept.id, scan(dept))  [est_rows=2 act_rows=2 est_cmp=0 act_cmp=0]
"
    );
    assert!(warm.profile.cache.hits >= 1);
}

#[test]
fn golden_subsumed_refilter() {
    let db = fixture();
    // Warm a wide seq-scan selection (orders.dept_id is unindexed, so
    // the cached TempList is order-safe and maintainable).
    let wide = db
        .query("orders")
        .filter(
            "dept_id",
            Predicate::between(KeyValue::Int(1), KeyValue::Int(2)),
        )
        .project(&[("orders", "oid")])
        .parallelism(1)
        .cache(true)
        .run()
        .unwrap();
    assert_eq!(wide.rows.len(), 40);
    // The narrower query has no exact entry; the planner costs the
    // subsumed re-filter against recompute and serves from the wide one.
    let q = |cached: bool| {
        db.query("orders")
            .filter("dept_id", Predicate::Eq(KeyValue::Int(2)))
            .project(&[("orders", "oid")])
            .parallelism(1)
            .cache(cached)
            .run()
            .unwrap()
    };
    let narrow = q(true);
    let cold = q(false);
    // Bit-identical to the cold oracle — rows AND row order.
    assert_eq!(narrow.rows, cold.rows);
    assert_eq!(narrow.columns, cold.columns);
    assert_eq!(
        narrow.profile.render(),
        "\
project [orders.oid]  [est_rows=6 act_rows=20 est_cmp=0 act_cmp=0]
  [cached⊆ refilter] sel(orders.dept_id = 2) from sel(orders.dept_id in [1, 2])  [est_rows=40 act_rows=20 est_cmp=40 act_cmp=40]
"
    );
    assert!(narrow.profile.cache.subsumed_hits >= 1);
}

#[test]
fn explain_round_trips_estimates_and_actuals() {
    let db = fixture();
    let q = || {
        db.query("emp")
            .filter("age", Predicate::greater(KeyValue::Int(60)))
            .join("dept_id", "dept", "id")
            .join_from("dept", "id", "orders", "dept_id")
            .project(&[("emp", "ename"), ("orders", "oid")])
            .parallelism(1)
    };
    let explained = q().explain().unwrap();
    let out = q().run().unwrap();
    let executed = out.profile.render();
    // Same plan, same estimates: stripping the actuals from the executed
    // rendering reproduces the explain text exactly.
    let strip = |s: &str| {
        s.lines()
            .map(|l| {
                let mut l = l.to_string();
                if let Some(i) = l.find(" act_rows=") {
                    let j = l[i..].find(" est_cmp=").unwrap() + i;
                    l.replace_range(i..j, " act_rows=-");
                }
                if let Some(i) = l.find(" act_cmp=") {
                    let j = l[i..].find(']').unwrap() + i;
                    l.replace_range(i..j, " act_cmp=-");
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&executed), strip(&explained));
    assert_eq!(strip(&explained), explained.trim_end_matches('\n'));
    // The executed profile carries both sides for every operator.
    for op in &out.profile.ops {
        assert!(op.executed, "{}", op.label);
    }
    assert!(executed.contains("act_rows="));
    assert!(!executed.contains("act_rows=-"));
}
