//! Cross-crate integration: the full MM-DBMS pipeline — generated
//! workload → storage → indexes → query processing → recovery.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mmdb_core::{Database, IndexKind};
use mmdb_exec::{JoinMethod, Predicate};
use mmdb_storage::{AttrType, KeyValue, OwnedValue, Schema};
use mmdb_workload::{RelationSpec, ValueSet};

fn load_values(db: &mut Database, table: &str, values: &[i64]) {
    let mut txn = db.begin();
    for (i, v) in values.iter().enumerate() {
        db.insert(
            &mut txn,
            table,
            vec![OwnedValue::Int(i as i64), OwnedValue::Int(*v)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
}

fn two_table_db(outer_vals: &[i64], inner_vals: &[i64]) -> Database {
    let mut db = Database::in_memory();
    for t in ["r1", "r2"] {
        db.create_table(
            t,
            Schema::of(&[("pk", AttrType::Int), ("jcol", AttrType::Int)]),
        )
        .unwrap();
        db.create_index(&format!("{t}_pk"), t, "pk", IndexKind::Hash)
            .unwrap();
        db.create_index(&format!("{t}_jcol"), t, "jcol", IndexKind::TTree)
            .unwrap();
    }
    load_values(&mut db, "r1", outer_vals);
    load_values(&mut db, "r2", inner_vals);
    db
}

#[test]
fn generated_workload_through_the_full_stack() {
    let spec = RelationSpec {
        cardinality: 2000,
        duplicate_pct: 40.0,
        sigma: 0.4,
        seed: 1,
    };
    let outer = ValueSet::generate(&spec);
    let inner = ValueSet::generate_matching(&RelationSpec { seed: 2, ..spec }, &outer, 60.0);
    let db = two_table_db(&outer.values, &inner.values);
    db.validate_indexes().unwrap();
    assert_eq!(db.len("r1").unwrap(), 2000);

    // Reference join count.
    let mut expect = 0usize;
    let mut counts = std::collections::HashMap::new();
    for v in &inner.values {
        *counts.entry(*v).or_insert(0usize) += 1;
    }
    for v in &outer.values {
        expect += counts.get(v).copied().unwrap_or(0);
    }

    // Every join method produces the reference count.
    for m in [
        JoinMethod::TreeMerge,
        JoinMethod::HashJoin,
        JoinMethod::TreeJoin,
        JoinMethod::SortMerge,
    ] {
        let out = db.join_with(m, "r1", "jcol", "r2", "jcol").unwrap();
        assert_eq!(out.len(), expect, "{m:?}");
    }
    // The planner picks Tree Merge (both T-Trees exist).
    assert_eq!(
        db.plan_join("r1", "jcol", "r2", "jcol").unwrap(),
        JoinMethod::TreeMerge
    );
}

#[test]
fn selection_paths_agree_on_results() {
    let spec = RelationSpec {
        cardinality: 1500,
        duplicate_pct: 70.0,
        sigma: 0.1,
        seed: 7,
    };
    let vals = ValueSet::generate(&spec);
    let db = two_table_db(&vals.values, &[1]);
    // Pick a duplicated value and check hash/tree/scan agree.
    let probe = vals.unique[0];
    let tree_hits = db
        .select("r1", "jcol", &Predicate::Eq(KeyValue::Int(probe)))
        .unwrap();
    let expect = vals.values.iter().filter(|v| **v == probe).count();
    assert_eq!(tree_hits.len(), expect);
    // Range via T-Tree vs manual filter.
    let lo = probe - 1000;
    let hi = probe + 1000;
    let range_hits = db
        .select(
            "r1",
            "jcol",
            &Predicate::between(KeyValue::Int(lo), KeyValue::Int(hi)),
        )
        .unwrap();
    let expect_range = vals
        .values
        .iter()
        .filter(|v| **v >= lo && **v <= hi)
        .count();
    assert_eq!(range_hits.len(), expect_range);
}

#[test]
fn transactional_churn_with_validation() {
    let mut db = Database::in_memory();
    db.create_table(
        "t",
        Schema::of(&[("k", AttrType::Int), ("v", AttrType::Str)]),
    )
    .unwrap();
    db.create_index("t_k", "t", "k", IndexKind::TTree).unwrap();
    db.create_index("t_v", "t", "v", IndexKind::Hash).unwrap();

    let mut live: std::collections::BTreeMap<i64, mmdb_storage::TupleId> =
        std::collections::BTreeMap::new();
    let mut seed = 12345u64;
    let mut rand = move || {
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for round in 0..50 {
        let mut txn = db.begin();
        let mut staged_inserts = Vec::new();
        for _ in 0..20 {
            let k = (rand() % 500) as i64;
            if rand() % 3 == 0 {
                if let Some(tid) = live.remove(&k) {
                    db.delete(&mut txn, "t", tid).unwrap();
                    continue;
                }
            }
            if !live.contains_key(&k) && !staged_inserts.iter().any(|(kk, _)| *kk == k) {
                db.insert(
                    &mut txn,
                    "t",
                    vec![OwnedValue::Int(k), OwnedValue::Str(format!("v{k}"))],
                )
                .unwrap();
                staged_inserts.push((k, ()));
            }
        }
        if round % 7 == 3 {
            // Abort sometimes: staged inserts must vanish, deletes undone
            // logically (we re-add them to `live` since nothing happened).
            let n_before = db.len("t").unwrap();
            db.abort(txn);
            assert_eq!(db.len("t").unwrap(), n_before);
            // Rebuild `live` from the database (aborted deletes survive).
            live = rebuild_live(&db);
        } else {
            let tids = db.commit(txn).unwrap();
            for ((k, ()), tid) in staged_inserts.into_iter().zip(tids) {
                live.insert(k, tid);
            }
            live = rebuild_live(&db);
        }
        db.validate_indexes().unwrap();
        assert_eq!(db.len("t").unwrap(), live.len());
    }
}

fn rebuild_live(db: &Database) -> std::collections::BTreeMap<i64, mmdb_storage::TupleId> {
    let mut m = std::collections::BTreeMap::new();
    for tid in db.tids("t").unwrap() {
        let k = match db.fetch("t", &[tid], &["k"]).unwrap()[0][0] {
            OwnedValue::Int(i) => i,
            _ => unreachable!(),
        };
        m.insert(k, tid);
    }
    m
}

#[test]
fn crash_recovery_of_bulk_data_across_partitions() {
    let mut db = Database::in_memory();
    db.create_table(
        "big",
        Schema::of(&[("k", AttrType::Int), ("pad", AttrType::Str)]),
    )
    .unwrap();
    db.create_index("big_k", "big", "k", IndexKind::TTree)
        .unwrap();
    // Enough tuples to span several 64 KB partitions.
    let n = 20_000usize;
    let mut txn = db.begin();
    for k in 0..n {
        db.insert(
            &mut txn,
            "big",
            vec![
                OwnedValue::Int(k as i64),
                OwnedValue::Str(format!("pad-{k}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    let parts = db.with_relation("big", |r| r.partition_count()).unwrap();
    assert!(parts > 2, "need multiple partitions, got {parts}");
    db.run_log_device().unwrap();

    // More committed churn after the checkpointing flush.
    let tids = db.tids("big").unwrap();
    let mut txn = db.begin();
    for tid in tids.iter().take(100) {
        db.update(&mut txn, "big", *tid, "k", OwnedValue::Int(1_000_000))
            .unwrap();
    }
    db.commit(txn).unwrap();

    let crashed = db.crash();
    let ws: Vec<(&str, u32)> = vec![("big", 0), ("big", 1)];
    let (db2, report) = crashed.recover(&ws).unwrap();
    assert_eq!(db2.len("big").unwrap(), n);
    db2.validate_indexes().unwrap();
    assert_eq!(report.loaded.len(), parts);
    assert_eq!(report.loaded[0].1, 0);
    assert_eq!(report.loaded[1].1, 1);
    let bumped = db2
        .select("big", "k", &Predicate::Eq(KeyValue::Int(1_000_000)))
        .unwrap();
    assert_eq!(bumped.len(), 100, "post-flush committed updates recovered");
}

#[test]
fn projection_through_templists() {
    use mmdb_exec::{project_hash, project_sort};
    use mmdb_storage::{OutputField, ResultDescriptor, TempList};
    let spec = RelationSpec {
        cardinality: 3000,
        duplicate_pct: 80.0,
        sigma: 0.8,
        seed: 99,
    };
    let vals = ValueSet::generate(&spec);
    let db = two_table_db(&vals.values, &[1]);
    let tids = db.tids("r1").unwrap();
    let list = TempList::from_tids(tids);
    let desc = ResultDescriptor::new(vec![OutputField::new(0, 1, "jcol")]);
    db.with_relation("r1", |rel| {
        let h = project_hash(&list, &desc, &[rel]).unwrap();
        let s = project_sort(&list, &desc, &[rel]).unwrap();
        assert_eq!(h.rows.len(), vals.unique.len());
        assert_eq!(s.rows.len(), vals.unique.len());
    })
    .unwrap();
}
